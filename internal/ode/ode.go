// Package ode implements the differential-equation characterization of §3
// of the paper: the peer-degree system z (eq. 7), the segment-degree system
// w (eq. 8), and the segment collection matrix m (eq. 12), together with
// their steady-state solutions.
//
// The z system is closed and nonlinear (through the 1−z_0 and 1−z_B
// factors); it is integrated to its fixed point with RK4. Given the steady
// z, the w system and each column of the m system become *linear*
// tridiagonal balance equations in the degree index, which are solved
// exactly with the Thomas algorithm — no truncation-time error, only the
// configurable degree cutoff.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the model parameters in the paper's notation. All rates are
// per unit time.
type Params struct {
	// Lambda is the per-peer block generation rate λ.
	Lambda float64
	// Mu is the per-peer gossip bandwidth μ.
	Mu float64
	// Gamma is the block deletion rate γ.
	Gamma float64
	// C is the normalized aggregate server capacity c.
	C float64
	// S is the segment size s.
	S int
	// B truncates the peer-degree system (the buffer size). Zero picks a
	// default large enough for the Theorem 1 regime.
	B int
	// W truncates the segment-degree systems. Zero picks a default.
	W int
}

// withDefaults fills B and W with generous truncation points.
func (p Params) withDefaults() Params {
	rhoBound := (p.Mu + p.Lambda) / p.Gamma
	if p.B == 0 {
		p.B = int(6*rhoBound) + 3*p.S + 10
	}
	if p.W == 0 {
		p.W = int(4*rhoBound) + 2*p.S + 30
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.Lambda < 0:
		return errors.New("ode: negative Lambda")
	case p.Mu < 0:
		return errors.New("ode: negative Mu")
	case p.Gamma <= 0:
		return errors.New("ode: Gamma must be positive")
	case p.C < 0:
		return errors.New("ode: negative C")
	case p.S < 1:
		return fmt.Errorf("ode: S = %d", p.S)
	case p.B < p.S:
		return fmt.Errorf("ode: B = %d below S = %d", p.B, p.S)
	case p.W < p.S:
		return fmt.Errorf("ode: W = %d below S = %d", p.W, p.S)
	}
	return nil
}

// SteadyState is the fixed point of the three ODE systems.
type SteadyState struct {
	Params Params

	// Z[i] is z̃_i for i = 0..B, the fraction of peers holding i blocks.
	Z []float64
	// E is ẽ = Σ i·z̃_i, the average number of blocks per peer.
	E float64
	// Rho is Theorem 1's ρ = (1−z̃_0)μ/γ + λ/γ.
	Rho float64
	// W[i] is w̃_i for i = 1..W (index 0 unused), segments of degree i per
	// peer.
	W []float64
	// M[i][j] is m̃_i^j for i = 1..W, j = 0..s: degree-i segments with j
	// blocks collected by the servers, per peer.
	M [][]float64
}

// Solve integrates the z system to its fixed point and solves the w and m
// steady states.
func Solve(p Params) (*SteadyState, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	z := solveZ(p)
	ss := &SteadyState{Params: p, Z: z}
	ss.E = 0
	for i, zi := range z {
		ss.E += float64(i) * zi
	}
	ss.Rho = (1-z[0])*p.Mu/p.Gamma + p.Lambda/p.Gamma
	if ss.E <= 0 {
		// Degenerate (no traffic); leave w/m zero.
		ss.W = make([]float64, p.W+1)
		ss.M = zeroMatrix(p.W, p.S)
		return ss, nil
	}
	ss.W = solveW(p, z[0], ss.E)
	ss.M = solveM(p, z[0], ss.E)
	return ss, nil
}

// Z0 returns z̃_0, the steady-state fraction of empty peers.
func (ss *SteadyState) Z0() float64 { return ss.Z[0] }

// SumW returns Σ_{i≥1} w̃_i, the number of distinct live segments per peer.
func (ss *SteadyState) SumW() float64 {
	var sum float64
	for i := 1; i < len(ss.W); i++ {
		sum += ss.W[i]
	}
	return sum
}

// SumMs returns Σ_{i≥1} m̃_i^s, the density of live segments already fully
// collected ("good segments").
func (ss *SteadyState) SumMs() float64 {
	s := ss.Params.S
	var sum float64
	for i := 1; i < len(ss.M); i++ {
		sum += ss.M[i][s]
	}
	return sum
}

// EdgeWeightedMs returns Σ_{i≥1} i·m̃_i^s, the edge mass of good segments
// that drives the redundancy term of Theorem 2.
func (ss *SteadyState) EdgeWeightedMs() float64 {
	s := ss.Params.S
	var sum float64
	for i := 1; i < len(ss.M); i++ {
		sum += float64(i) * ss.M[i][s]
	}
	return sum
}

// zDeriv writes the right-hand side of eq. (7) (with the exact Kronecker
// boundary handling of eqs. (1), (3), (5)) into dz.
func zDeriv(p Params, z, dz []float64) {
	b := p.B
	s := p.S
	transfer := 0.0
	if denom := 1 - z[b]; denom > 1e-300 {
		transfer = (1 - z[0]) * p.Mu / denom
	}
	injRate := p.Lambda / float64(s)
	for i := 0; i <= b; i++ {
		var d float64
		// Block encoding and transfer (eq. 1): peers of degree i < B gain a
		// block; i−1 → i inflow for i ≥ 1.
		if i >= 1 {
			d += transfer * z[i-1]
		}
		if i < b {
			d -= transfer * z[i]
		}
		// Block deletion (eq. 3).
		if i < b {
			d += float64(i+1) * z[i+1] * p.Gamma
		}
		d -= float64(i) * z[i] * p.Gamma
		// Segment injection (eq. 5): peers with degree ≤ B−s accept a batch
		// of s blocks.
		if i <= b-s {
			d -= injRate * z[i]
		}
		if i >= s && i-s <= b-s {
			d += injRate * z[i-s]
		}
		dz[i] = d
	}
}

// zIntegrator steps the z system with RK4 from the empty network.
type zIntegrator struct {
	p                  Params
	z                  []float64
	dt                 float64
	k1, k2, k3, k4, tm []float64
}

func newZIntegrator(p Params) *zIntegrator {
	n := p.B + 1
	z := make([]float64, n)
	z[0] = 1
	// Step bounded by the stiffest rate (deletion at degree B); RK4's
	// real-axis stability limit is ~2.78/|λ_max|.
	maxRate := float64(p.B)*p.Gamma + p.Mu + p.Lambda
	return &zIntegrator{
		p: p, z: z, dt: 1.0 / maxRate,
		k1: make([]float64, n), k2: make([]float64, n),
		k3: make([]float64, n), k4: make([]float64, n),
		tm: make([]float64, n),
	}
}

// step advances one RK4 step.
func (zi *zIntegrator) step() {
	z, dt := zi.z, zi.dt
	zDeriv(zi.p, z, zi.k1)
	axpy(zi.tm, z, zi.k1, dt/2)
	zDeriv(zi.p, zi.tm, zi.k2)
	axpy(zi.tm, z, zi.k2, dt/2)
	zDeriv(zi.p, zi.tm, zi.k3)
	axpy(zi.tm, z, zi.k3, dt)
	zDeriv(zi.p, zi.tm, zi.k4)
	for i := range z {
		z[i] += dt / 6 * (zi.k1[i] + 2*zi.k2[i] + 2*zi.k3[i] + zi.k4[i])
		if z[i] < 0 {
			z[i] = 0
		}
	}
}

// e returns Σ i·z_i, the current average blocks per peer.
func (zi *zIntegrator) e() float64 {
	var e float64
	for i, v := range zi.z {
		e += float64(i) * v
	}
	return e
}

// converged reports whether the derivative has vanished.
func (zi *zIntegrator) converged(tol float64) bool {
	zDeriv(zi.p, zi.z, zi.k1)
	return maxAbs(zi.k1) < tol*math.Max(1, zi.p.Lambda)
}

// solveZ integrates the z system from the empty network to its fixed point.
func solveZ(p Params) []float64 {
	zi := newZIntegrator(p)
	const (
		horizon  = 400.0 // in units of 1/γ-normalized model time
		checkGap = 50    // steps between convergence checks
		tol      = 1e-10
	)
	steps := int(horizon / (p.Gamma * zi.dt))
	for step := 0; step < steps; step++ {
		zi.step()
		if step%checkGap == 0 && zi.converged(tol) {
			break
		}
	}
	// Renormalize the tiny numerical drift in Σz.
	z := zi.z
	var sum float64
	for _, v := range z {
		sum += v
	}
	if sum > 0 {
		for i := range z {
			z[i] /= sum
		}
	}
	return z
}

// TrajectoryPoint is one sample of the transient z solution.
type TrajectoryPoint struct {
	T  float64 // model time
	E  float64 // average blocks per peer, e(t)
	Z0 float64 // empty-peer fraction
}

// EvolveE integrates the z system from the empty network over [0, horizon]
// and samples e(t) and z_0(t) at the given interval. This is the transient
// behaviour Wormald's theorem [12] says the finite-N process tracks; the T5
// experiment compares it against the simulator started empty.
func EvolveE(p Params, horizon, interval float64) ([]TrajectoryPoint, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 || interval <= 0 {
		return nil, errors.New("ode: horizon and interval must be positive")
	}
	zi := newZIntegrator(p)
	out := []TrajectoryPoint{{T: 0, E: zi.e(), Z0: zi.z[0]}}
	next := interval
	for t := 0.0; t < horizon; {
		zi.step()
		t += zi.dt
		if t >= next {
			out = append(out, TrajectoryPoint{T: t, E: zi.e(), Z0: zi.z[0]})
			next += interval
		}
	}
	return out, nil
}

// solveW solves the steady-state w system (eq. 8) as a tridiagonal balance:
//
//	0 = a·((i−1)w_{i−1} − i·w_i)/e + γ((i+1)w_{i+1} − i·w_i) + δ_{is}·λ/s
//
// for i = 1..W with w_{W+1} = 0, where a = (1−z̃_0)μ.
func solveW(p Params, z0, e float64) []float64 {
	a := (1 - z0) * p.Mu / e
	n := p.W
	lower := make([]float64, n+1) // coefficient of w_{i−1} in row i
	diag := make([]float64, n+1)
	upper := make([]float64, n+1) // coefficient of w_{i+1}
	rhs := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		fi := float64(i)
		lower[i] = a * (fi - 1)
		diag[i] = -(a*fi + p.Gamma*fi)
		if i < n {
			upper[i] = p.Gamma * (fi + 1)
		}
		if i == p.S {
			rhs[i] = -p.Lambda / float64(p.S)
		}
	}
	w := thomas(lower[1:], diag[1:], upper[1:], rhs[1:])
	out := make([]float64, n+1)
	copy(out[1:], w)
	return out
}

// solveM solves the steady-state collection matrix (eq. 12) column by
// column: given m^{j−1}, the j-th column is tridiagonal in the degree index.
func solveM(p Params, z0, e float64) [][]float64 {
	a := (1 - z0) * p.Mu / e
	cOverE := p.C / e
	n := p.W
	s := p.S
	m := zeroMatrix(n, s)
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	rhs := make([]float64, n)
	for j := 0; j <= s; j++ {
		for i := 1; i <= n; i++ {
			fi := float64(i)
			k := i - 1
			lower[k] = a * (fi - 1)
			diag[k] = -(a*fi + p.Gamma*fi)
			if j < s {
				// Pulls advance state-j segments to state j+1, an extra
				// outflow; state-s segments take no more useful pulls.
				diag[k] -= cOverE * fi
			}
			if i < n {
				upper[k] = p.Gamma * (fi + 1)
			} else {
				upper[k] = 0
			}
			rhs[k] = 0
			if j == 0 && i == s {
				rhs[k] = -p.Lambda / float64(s)
			}
			if j > 0 {
				rhs[k] -= cOverE * fi * m[i][j-1]
			}
		}
		col := thomas(lower, diag, upper, rhs)
		for i := 1; i <= n; i++ {
			m[i][j] = col[i-1]
		}
	}
	return m
}

// thomas solves a tridiagonal system in place of copies: row k has
// lower[k]·x_{k−1} + diag[k]·x_k + upper[k]·x_{k+1} = rhs[k].
func thomas(lower, diag, upper, rhs []float64) []float64 {
	n := len(diag)
	cp := make([]float64, n)
	dp := make([]float64, n)
	cp[0] = upper[0] / diag[0]
	dp[0] = rhs[0] / diag[0]
	for k := 1; k < n; k++ {
		denom := diag[k] - lower[k]*cp[k-1]
		if k < n-1 {
			cp[k] = upper[k] / denom
		}
		dp[k] = (rhs[k] - lower[k]*dp[k-1]) / denom
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for k := n - 2; k >= 0; k-- {
		x[k] = dp[k] - cp[k]*x[k+1]
	}
	return x
}

func zeroMatrix(w, s int) [][]float64 {
	m := make([][]float64, w+1)
	for i := range m {
		m[i] = make([]float64, s+1)
	}
	return m
}

func axpy(dst, x, dx []float64, h float64) {
	for i := range dst {
		dst[i] = x[i] + h*dx[i]
	}
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
