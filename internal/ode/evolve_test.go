package ode

import (
	"math"
	"testing"
)

func TestEvolveFullValidation(t *testing.T) {
	p := defaultParams()
	if _, err := EvolveFull(p, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := EvolveFull(p, 10, -1); err == nil {
		t.Error("negative interval accepted")
	}
	bad := p
	bad.Gamma = 0
	if _, err := EvolveFull(bad, 10, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestEvolveFullConvergesToSteadyState(t *testing.T) {
	p := defaultParams() // λ=8, μ=6, γ=1, c=3, s=4
	traj, err := EvolveFull(p, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	last, err := SteadyFromTrajectory(traj)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(last.E-ss.E) / ss.E; rel > 1e-3 {
		t.Errorf("E: trajectory %v vs steady %v", last.E, ss.E)
	}
	if rel := math.Abs(last.SumW-ss.SumW()) / ss.SumW(); rel > 1e-3 {
		t.Errorf("SumW: trajectory %v vs steady %v", last.SumW, ss.SumW())
	}
	if diff := math.Abs(last.SumMs - ss.SumMs()); diff > 1e-3*(1+ss.SumMs()) {
		t.Errorf("SumMs: trajectory %v vs steady %v", last.SumMs, ss.SumMs())
	}
	steadyEta := 1 - ss.EdgeWeightedMs()/ss.E
	if diff := math.Abs(last.Eta - steadyEta); diff > 1e-3 {
		t.Errorf("Eta: trajectory %v vs steady %v", last.Eta, steadyEta)
	}
	var steadySaved float64
	for i := p.S; i < len(ss.W); i++ {
		steadySaved += ss.W[i] - ss.M[i][p.S]
	}
	steadySaved *= float64(p.S)
	if diff := math.Abs(last.SavedPerPeer - steadySaved); diff > 1e-2*(1+steadySaved) {
		t.Errorf("Saved: trajectory %v vs steady %v", last.SavedPerPeer, steadySaved)
	}
}

func TestEvolveFullTransientShape(t *testing.T) {
	p := defaultParams()
	traj, err := EvolveFull(p, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if traj[0].E != 0 || traj[0].Z0 != 1 || traj[0].Eta != 1 {
		t.Errorf("initial point = %+v", traj[0])
	}
	// Efficiency starts at 1 (nothing collected yet) and decreases toward
	// its equilibrium as good segments accumulate.
	for i := 1; i < len(traj); i++ {
		if traj[i].Eta > 1+1e-9 || traj[i].Eta < -1e-9 {
			t.Fatalf("eta out of range at t=%v: %v", traj[i].T, traj[i].Eta)
		}
	}
	// For these parameters the efficiency dips while the network is still
	// small (pulls concentrate on the few early segments and saturate
	// them), then recovers toward equilibrium as injection fills the pool.
	minEta := 1.0
	for _, pt := range traj {
		minEta = math.Min(minEta, pt.Eta)
	}
	late := traj[len(traj)-1].Eta
	if minEta >= late {
		t.Errorf("no transient efficiency dip: min %v, late %v", minEta, late)
	}
	// Good segments accumulate monotonically at the start.
	if traj[5].SumMs <= traj[1].SumMs {
		t.Errorf("good segments did not accumulate: %v -> %v", traj[1].SumMs, traj[5].SumMs)
	}
}

func TestSteadyFromTrajectoryErrors(t *testing.T) {
	if _, err := SteadyFromTrajectory(nil); err == nil {
		t.Error("empty trajectory accepted")
	}
	if _, err := SteadyFromTrajectory([]FullTrajectoryPoint{{E: math.NaN()}}); err == nil {
		t.Error("NaN trajectory accepted")
	}
}
