package p2pcollect_test

import (
	"fmt"

	"p2pcollect"
)

// ExampleAnalyze evaluates the paper's analytical model at one operating
// point: servers provisioned for 20% of the statistics demand, coding over
// 20-block segments.
func ExampleAnalyze() {
	m, err := p2pcollect.Analyze(p2pcollect.ModelParams{
		Lambda: 20, // blocks generated per peer per unit time
		Mu:     10, // gossip bandwidth per peer
		Gamma:  1,  // TTL rate (mean block lifetime 1/γ)
		C:      4,  // normalized aggregate server capacity
		S:      20, // segment size
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("capacity %.2f of demand\n", m.Capacity)
	fmt.Printf("throughput %.3f of demand (efficiency %.3f)\n", m.NormalizedThroughput, m.Efficiency)
	fmt.Printf("storage overhead %.1f blocks/peer (bound %.0f)\n", m.Overhead, 10.0)
	// Output:
	// capacity 0.20 of demand
	// throughput 0.200 of demand (efficiency 1.000)
	// storage overhead 10.0 blocks/peer (bound 10)
}

// ExampleNonCodingThroughput shows Theorem 2's closed form for the
// non-coding case s = 1.
func ExampleNonCodingThroughput() {
	sigma, err := p2pcollect.NonCodingThroughput(20, 10, 1, 4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("without coding the session delivers %.1f%% of demand (capacity 20%%)\n", 100*sigma)
	// Output:
	// without coding the session delivers 15.6% of demand (capacity 20%)
}

// ExampleSimulate runs the discrete-event simulator on a small session and
// prints the paper's headline metric.
func ExampleSimulate() {
	r, err := p2pcollect.Simulate(p2pcollect.SimConfig{
		N: 100, Lambda: 8, Mu: 6, Gamma: 1, SegmentSize: 8,
		BufferCap: 96, C: 3,
		Warmup: 8, Horizon: 24, Seed: 7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("delivered segments: %v; efficiency within [0,1]: %v\n",
		r.DeliveredSegments > 0, r.CollectionEfficiency() >= 0 && r.CollectionEfficiency() <= 1)
	// Output:
	// delivered segments: true; efficiency within [0,1]: true
}
