module p2pcollect

go 1.22
