// Package p2pcollect implements indirect large-scale P2P data collection
// (Niu & Li, ICDCS 2008): instead of uploading vital-statistics logs
// directly to centralized logging servers, peers spread random-linear-
// network-coded blocks of their statistics through gossip, and the servers
// harvest them with a coupon-collector pull loop. The network itself
// becomes a buffering zone, so server bandwidth only needs to cover the
// average statistics rate rather than the peak, and data of departed peers
// remains collectable.
//
// The package is a facade over four layers:
//
//   - Simulate / SimulateBaseline run the discrete-event simulator of the
//     full protocol (gossip, TTLs, buffer caps, churn, servers) and of the
//     traditional direct-pull architecture.
//   - Analyze evaluates the paper's ODE characterization (§3) and Theorems
//     1-4: storage overhead, session throughput, block delay, saved data.
//   - StartCluster boots a live wall-clock deployment of real nodes that
//     gossip actual coded statistics records over in-memory or TCP
//     transports; logging servers reconstruct the original records.
//   - The experiments package (driven by cmd/collectsim) regenerates every
//     figure and table of the paper's evaluation.
//   - The observability layer (histograms, segment-lifecycle tracing, and a
//     debug HTTP endpoint) instruments both the simulator and live
//     deployments; see NewRingTracer, ServeDebug, and
//     ClusterConfig.DebugAddr.
//
// See README.md for a walkthrough and examples/ for runnable programs.
package p2pcollect

import (
	"io"

	"p2pcollect/internal/analysis"
	"p2pcollect/internal/collect/store/wal"
	"p2pcollect/internal/fleet"
	"p2pcollect/internal/gf256"
	"p2pcollect/internal/live"
	"p2pcollect/internal/membership"
	"p2pcollect/internal/obs"
	"p2pcollect/internal/ode"
	"p2pcollect/internal/pullsched"
	"p2pcollect/internal/randx"
	"p2pcollect/internal/rlnc"
	"p2pcollect/internal/sim"
	"p2pcollect/internal/transport"
)

// Simulation layer.
type (
	// SimConfig parameterizes a discrete-event run of the indirect
	// collection protocol; see the field docs for the paper's notation.
	SimConfig = sim.Config
	// SimResult carries the measurements of a run, in both the paper's
	// state-based accounting and the stricter rank-based one.
	SimResult = sim.Result
	// Simulator is a stepwise simulation handle for callers that need
	// mid-run inspection (invariants, segment views, drain experiments).
	Simulator = sim.Simulator
	// SegmentView is a read-only snapshot of one live segment.
	SegmentView = sim.SegmentView
	// BaselineConfig parameterizes the traditional direct-pull
	// architecture of Fig. 1(a).
	BaselineConfig = sim.BaselineConfig
	// BaselineResult carries the baseline's measurements.
	BaselineResult = sim.BaselineResult
)

// Simulate runs the indirect-collection protocol simulation to its horizon.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// NewSimulator builds a stepwise simulator; drive it with RunUntil and read
// Result when done.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return sim.New(cfg) }

// SimulateBaseline runs the traditional direct-pull architecture.
func SimulateBaseline(cfg BaselineConfig) (*BaselineResult, error) {
	return sim.RunBaseline(cfg)
}

// Analysis layer.
type (
	// ModelParams are the ODE model parameters (λ, μ, γ, c, s).
	ModelParams = ode.Params
	// SteadyState is the fixed point of the z/w/m ODE systems.
	SteadyState = ode.SteadyState
	// Analysis bundles Theorems 1-4 for one parameter setting.
	Analysis = analysis.Metrics
)

// Analyze solves the steady-state ODE systems for p and evaluates the
// paper's theorems.
func Analyze(p ModelParams) (*Analysis, error) { return analysis.Compute(p) }

// SolveODE returns the raw steady state (degree distributions and the
// collection matrix) for callers that need more than the headline metrics.
func SolveODE(p ModelParams) (*SteadyState, error) { return ode.Solve(p) }

// NonCodingThroughput evaluates Theorem 2's closed form for s = 1: the
// normalized session throughput 1 − 1/θ₊.
func NonCodingThroughput(lambda, mu, gamma, c float64) (float64, error) {
	return analysis.ThroughputNonCoding(lambda, mu, gamma, c)
}

// Live deployment layer.
type (
	// NodeConfig parameterizes one live peer (rates per second).
	NodeConfig = live.NodeConfig
	// Node is a running live peer.
	Node = live.Node
	// ServerConfig parameterizes one live logging server.
	ServerConfig = live.ServerConfig
	// Server is a running live logging server.
	Server = live.Server
	// ClusterConfig describes an in-process deployment of peers and
	// servers on an in-memory network.
	ClusterConfig = live.ClusterConfig
	// Cluster is a running in-process deployment.
	Cluster = live.Cluster
	// NodeID identifies a node on a transport.
	NodeID = transport.NodeID
	// Transport moves protocol messages; implementations include the
	// in-memory Network and TCP (NewTCPTransport).
	Transport = transport.Transport
	// Network is the in-memory message fabric.
	Network = transport.Network
	// TCPOptions tunes the TCP transport's dial/write deadlines, outbox
	// bound, and reconnect backoff.
	TCPOptions = transport.TCPOptions
	// FaultConfig parameterizes injected transport faults (loss, latency,
	// partitions) for chaos testing.
	FaultConfig = transport.FaultConfig
	// FaultPartition is one scheduled partition window.
	FaultPartition = transport.FaultPartition
	// FaultyTransport wraps any Transport with seeded fault injection.
	FaultyTransport = transport.Faulty
	// SegmentID identifies a coded segment network-wide.
	SegmentID = rlnc.SegmentID
	// PullPolicy schedules a live server's pulls: which peer to probe and,
	// optionally, which segment to ask for. See NewPullPolicy.
	PullPolicy = pullsched.Policy
	// DeliveryJournal is a fleet's shared delivery-dedup: whichever shard
	// first reaches full rank on a segment claims it, so OnSegment fires
	// exactly once fleet-wide. Share one journal across every in-process
	// shard (ClusterConfig.Fleet does this for you); separate processes
	// each run their own and rely on completion notices for best-effort
	// cross-process dedup.
	DeliveryJournal = fleet.Journal
	// Durability configures a live server's write-ahead log (set it on
	// ServerConfig.Durability): where the log lives, the fsync policy, and
	// how often decoder state is snapshotted. A server restarted over the
	// same directory recovers every open segment at its pre-crash rank.
	Durability = wal.Config
	// WALSyncMode selects when appended WAL records reach disk:
	// WALSyncInterval (group commit, the default), WALSyncNone, or
	// WALSyncAlways.
	WALSyncMode = wal.SyncMode
	// WALRecoveryStats reports what a restarted server reconstructed from
	// its WAL directory (Server.Service().Recovery()).
	WALRecoveryStats = wal.RecoveryStats
)

// WAL fsync policies for Durability.Sync.
const (
	WALSyncInterval = wal.SyncInterval
	WALSyncNone     = wal.SyncNone
	WALSyncAlways   = wal.SyncAlways
)

// ParseWALSyncMode parses "none", "interval", or "always" (the -wal-sync
// flag vocabulary; "" selects interval).
func ParseWALSyncMode(s string) (WALSyncMode, error) { return wal.ParseSyncMode(s) }

// ServerRecovery reports what a durable server reconstructed from its WAL
// directory when it was built, and whether the server is durable at all.
func ServerRecovery(s *Server) (WALRecoveryStats, bool) { return s.Service().Recovery() }

// OpenDeliveryJournal opens (or recovers) a durable delivery journal at
// path: every claim is persisted and fsynced before the segment is
// delivered, so a fleet shard restarted over the same file never delivers
// a segment twice. Close the returned Closer when the fleet stops.
func OpenDeliveryJournal(path string, cap int) (*DeliveryJournal, io.Closer, error) {
	j, jf, err := wal.OpenJournal(path, cap)
	if err != nil {
		return nil, nil, err
	}
	return j, jf, nil
}

// NewDeliveryJournal returns a delivery journal remembering up to cap
// segments (cap <= 0 selects a ~1M-entry default). Set it on
// ServerConfig.Journal for every shard of a fleet.
func NewDeliveryJournal(cap int) *DeliveryJournal { return fleet.NewJournal(cap) }

// StartCluster boots an in-process live deployment: peers on a random
// overlay plus logging servers, all running real protocol loops.
func StartCluster(cfg ClusterConfig) (*Cluster, error) { return live.StartCluster(cfg) }

// NewNetwork returns an in-memory transport fabric for live nodes.
func NewNetwork() *Network { return transport.NewNetwork() }

// NewNode builds a live peer over the given transport.
func NewNode(tr Transport, cfg NodeConfig) (*Node, error) { return live.NewNode(tr, cfg) }

// NewServer builds a live logging server over the given transport.
func NewServer(tr Transport, cfg ServerConfig) (*Server, error) { return live.NewServer(tr, cfg) }

// CodingKernel reports which GF(2^8) slice-kernel implementation this build
// selected: "ssse3" (PSHUFB vector assembly on amd64 CPUs that support it),
// "nibble" (portable word-at-a-time nibble tables), or "ref" (the scalar
// reference build, selected with -tags gf256ref). All coding throughput —
// recoding on peers, elimination and decoding on servers — runs on these
// kernels.
func CodingKernel() string { return gf256.Kernel() }

// NewTCPTransport starts a TCP transport for id on addr (":0" for an
// ephemeral port) with an address book mapping node IDs to addresses and
// default liveness options.
func NewTCPTransport(id NodeID, addr string, book map[NodeID]string) (*transport.TCPTransport, error) {
	return transport.ListenTCP(id, addr, book)
}

// NewTCPTransportOpts is NewTCPTransport with explicit dial/write deadline,
// outbox, and reconnect-backoff options.
func NewTCPTransportOpts(id NodeID, addr string, book map[NodeID]string, opts TCPOptions) (*transport.TCPTransport, error) {
	return transport.ListenTCPOpts(id, addr, book, opts)
}

type (
	// UDPOptions tunes the datagram transport's maximum datagram size
	// (MTU guard) and outbox bound.
	UDPOptions = transport.UDPOptions
	// MembershipConfig parameterizes the SWIM failure detector a node or
	// server runs when NodeConfig.Membership / ServerConfig.Membership is
	// set: seed members, probe period, suspicion timeout, and rumor
	// budgets. The zero value (plus Seeds) accepts the defaults.
	MembershipConfig = membership.Config
	// Member is one endpoint in the membership gossip: its transport ID,
	// dialable address (empty on the in-memory fabric), and role.
	Member = membership.Member
	// MemberRole distinguishes gossip peers from logging servers in the
	// membership gossip; only MemberPeer members enter gossip and pull
	// target sets.
	MemberRole = membership.Role
	// MemberStatus is a member's detector state: alive, suspect, dead, or
	// left.
	MemberStatus = membership.Status
	// MembershipAgent is a running SWIM detector (Node.Membership /
	// Server.Membership): query Alive and Status for the local view.
	MembershipAgent = membership.Agent
)

// Membership roles and statuses.
const (
	MemberPeer    = membership.RolePeer
	MemberServer  = membership.RoleServer
	MemberAlive   = membership.StatusAlive
	MemberSuspect = membership.StatusSuspect
	MemberDead    = membership.StatusDead
	MemberLeft    = membership.StatusLeft
)

// NewUDPTransport starts the datagram transport for id on addr (":0" for
// an ephemeral port). Every protocol message rides one fire-and-forget UDP
// datagram: no connections, no retransmission — RLNC's coded redundancy is
// the loss recovery. Frames larger than the configured max datagram are
// dropped (and counted) rather than fragmented, and routes are learned
// from the source address of incoming datagrams on top of the book, so a
// static book is optional when SWIM membership is running.
func NewUDPTransport(id NodeID, addr string, book map[NodeID]string) (*transport.UDPTransport, error) {
	return transport.ListenUDP(id, addr, book)
}

// NewUDPTransportOpts is NewUDPTransport with explicit datagram-size and
// outbox options.
func NewUDPTransportOpts(id NodeID, addr string, book map[NodeID]string, opts UDPOptions) (*transport.UDPTransport, error) {
	return transport.ListenUDPOpts(id, addr, book, opts)
}

// PullPolicies lists the built-in pull-scheduling policy names: "blind"
// (the paper-faithful baseline), "rankgreedy", and "rarest". The same
// names select a policy in SimConfig.PullPolicy and
// ClusterConfig.PullPolicy.
func PullPolicies() []string { return pullsched.Names() }

// NewPullPolicy builds a named pull-scheduling policy for a live server
// ("" selects blind). Policies are stateful: give each server its own
// instance, seeded for reproducible tie-breaking.
func NewPullPolicy(name string, seed int64) (PullPolicy, error) { return pullsched.New(name, seed) }

// NewFaultyTransport wraps a transport with seeded fault injection —
// random loss, a latency distribution, and a partition schedule — for
// rehearsing failure against the exact production code paths.
func NewFaultyTransport(inner Transport, cfg FaultConfig, seed int64) *FaultyTransport {
	return transport.NewFaulty(inner, cfg, randx.New(seed))
}

// Observability layer.
type (
	// Tracer receives segment-lifecycle milestones (inject, gossip hops,
	// rank growth, delivery, decode) from the simulator or live endpoints.
	Tracer = obs.Tracer
	// RingTracer is the bounded in-memory Tracer; query it to reconstruct
	// where a segment's time went.
	RingTracer = obs.RingTracer
	// TraceEvent is one recorded segment-lifecycle milestone.
	TraceEvent = obs.TraceEvent
	// TraceKind classifies a TraceEvent.
	TraceKind = obs.TraceKind
	// SegmentTrace is one segment's recorded lifecycle; Phases breaks it
	// into named spans (inject→firstHop, inject→delivered, ...).
	SegmentTrace = obs.SegmentTrace
	// ObsRegistry is one endpoint's observability registry: counters,
	// histograms, gauges, and sampled time series, scrapeable as a JSON
	// snapshot or Prometheus text.
	ObsRegistry = obs.Registry
	// DebugServer is a running debug HTTP endpoint (Prometheus /metrics,
	// JSON /debug/snapshot, pprof).
	DebugServer = obs.DebugServer
	// TraceContext is the sampled lineage a traced block carries on the
	// wire: a cluster-unique ID plus a hop count. Enable sampling with
	// SimConfig/NodeConfig/ClusterConfig.TraceSample.
	TraceContext = obs.TraceContext
	// ProcessDump is one process's trace contribution — a labeled event
	// batch from a ring tail, flight recorder, or saved snapshot — fed to
	// an Assembler (see Cluster.Dumps and ClusterConfig.PerEndpointTrace).
	ProcessDump = obs.ProcessDump
	// Span is one sampled segment's stitched end-to-end story across
	// every process that touched it, with per-hop latency attribution.
	Span = obs.Span
	// Assembler stitches per-process dumps into Spans, one per lineage.
	Assembler = obs.Assembler
	// FlightRecorder is the always-on crash black box every live server
	// carries; CrashStop and loop panics dump it next to the WAL.
	FlightRecorder = obs.FlightRecorder
	// ObsSnapshot is one registry's scraped state; MergeSnapshots folds
	// many into a cluster view.
	ObsSnapshot = obs.Snapshot
)

// Segment-lifecycle milestone kinds recorded by tracers.
const (
	TraceInject      = obs.TraceInject
	TraceGossipHop   = obs.TraceGossipHop
	TraceServerRank  = obs.TraceServerRank
	TraceDelivered   = obs.TraceDelivered
	TraceDecoded     = obs.TraceDecoded
	TracePurged      = obs.TracePurged
	TraceExchanged   = obs.TraceExchanged
	TraceServerStart = obs.TraceServerStart
	TraceServerStop  = obs.TraceServerStop
	TraceServerCrash = obs.TraceServerCrash
)

// NewRingTracer returns a bounded segment-lifecycle tracer holding the last
// capacity events. Attach it via SimConfig.Tracer, NodeConfig.Tracer, or
// ServerConfig.Tracer; ClusterConfig.TraceCap attaches a shared one to every
// endpoint.
func NewRingTracer(capacity int) *RingTracer { return obs.NewRingTracer(capacity) }

// NewAssembler returns an empty span assembler: Add one ProcessDump per
// process, then Assemble into end-to-end Spans.
func NewAssembler() *Assembler { return obs.NewAssembler() }

// MergeSnapshots folds per-endpoint registry snapshots into one cluster
// view: counters and gauges sum, histograms merge bucket-wise with
// recomputed percentiles. cmd/obstool does this over live /debug/snapshot
// scrapes.
func MergeSnapshots(label string, snaps ...ObsSnapshot) ObsSnapshot {
	return obs.MergeSnapshots(label, snaps...)
}

// ReadFlightDump decodes a crash flight-recorder dump file, tolerating a
// tail torn by the dying process. cmd/obstool postmortem renders one
// alongside the WAL recovery stats.
func ReadFlightDump(path string) ([]TraceEvent, error) { return obs.ReadFlightDumpFile(path) }

// ServeDebug serves the given registries on one debug HTTP address (":0"
// for an ephemeral port): Prometheus text on /metrics, a JSON snapshot on
// /debug/snapshot, and pprof under /debug/pprof/. Registries are
// distinguished by their endpoint label. Close the returned server when
// done.
func ServeDebug(addr string, regs ...*ObsRegistry) (*DebugServer, error) {
	return obs.Serve(addr, obs.NewGroup(regs...))
}
