package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "s1", "-n", "40", "-horizon", "10", "-warmup", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "closed form") {
		t.Errorf("missing closed-form series:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "overhead", "-csv", "-n", "40", "-horizon", "10", "-warmup", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "mu,") {
		t.Errorf("CSV header = %q", first)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCSVWithAllRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "all", "-csv"}, &out); err == nil {
		t.Error("-csv with all accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
