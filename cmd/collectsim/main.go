// Command collectsim regenerates the paper's evaluation figures and tables
// from the analytical model and the discrete-event simulator.
//
// Usage:
//
//	collectsim -experiment fig3 [-n 300] [-horizon 40] [-warmup 15] [-seed 42] [-csv]
//	collectsim -experiment all
//
// Experiments: fig3, fig4, fig5, fig6, overhead (t1), s1 (t2),
// baseline (t3), drain (t4), ablation (a1), feedback (a2), all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"p2pcollect"
	"p2pcollect/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "collectsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collectsim", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment to run: fig3, fig4, fig5, fig6, overhead, s1, baseline, drain, ablation, feedback, all")
		n          = fs.Int("n", 0, "simulated peer population (0 = default)")
		horizon    = fs.Float64("horizon", 0, "simulated duration per run (0 = default)")
		warmup     = fs.Float64("warmup", 0, "measurement warmup per run (0 = default)")
		seed       = fs.Int64("seed", 0, "random seed (0 = default)")
		csv        = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		chart      = fs.Bool("chart", false, "draw an ASCII chart after the table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Wall-clock cost depends heavily on which GF(2^8) kernel the build
	// selected (results never do), so say which one is running.
	fmt.Fprintf(os.Stderr, "collectsim: gf256 kernel %q\n", p2pcollect.CodingKernel())
	opt := experiments.Options{N: *n, Horizon: *horizon, Warmup: *warmup, Seed: *seed}
	if *experiment == "all" {
		if *csv {
			return fmt.Errorf("-csv is only supported for single experiments")
		}
		return experiments.All(opt, out)
	}
	gen, ok := experiments.ByName(*experiment)
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	tbl, err := gen(opt)
	if err != nil {
		return err
	}
	if *csv {
		_, err = fmt.Fprint(out, tbl.RenderCSV())
	} else {
		_, err = fmt.Fprint(out, tbl.Render())
	}
	if err == nil && *chart {
		_, err = fmt.Fprint(out, "\n"+tbl.RenderChart())
	}
	return err
}
