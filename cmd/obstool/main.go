// Command obstool is the fleet-side companion to the in-process debug
// endpoints: it turns per-shard scrapes and crash artifacts into one
// cluster-level picture.
//
//	obstool merge [-format text|prom] [-label cluster] <url-or-file>...
//	    Scrape N /debug/snapshot endpoints (or read saved JSON payloads),
//	    merge every endpoint registry into one cluster view, and print it
//	    with a per-shard breakdown and derived signals: pull redundancy
//	    ratio, delivery-delay percentiles, WAL append-latency percentiles.
//
//	obstool postmortem [-wal dir] <flight.bin>
//	    Decode a crash flight-recorder dump (the last moments of a dead
//	    server) and inspect the WAL directory next to it without mutating
//	    it, reporting what a restart would recover.
//
//	obstool lint <url-or-file>
//	    Check a /metrics exposition against the Prometheus text-format
//	    rules (one TYPE line per family, contiguous families, cumulative
//	    histogram buckets).
//
// Sources starting with http:// or https:// are fetched; anything else is
// read as a local file. The merge output with -format prom is itself a
// valid exposition, so a cron job can re-export the cluster view to a
// pushgateway-style sink.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"p2pcollect/internal/collect/store/wal"
	"p2pcollect/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "merge":
		fs := flag.NewFlagSet("merge", flag.ExitOnError)
		format := fs.String("format", "text", `output format: "text" or "prom"`)
		label := fs.String("label", "cluster", "label for the merged snapshot")
		fs.Parse(os.Args[2:]) //nolint:errcheck // ExitOnError
		err = runMerge(os.Stdout, *format, *label, fs.Args())
	case "postmortem":
		fs := flag.NewFlagSet("postmortem", flag.ExitOnError)
		walDir := fs.String("wal", "", "WAL directory to inspect (default: the dump's directory)")
		fs.Parse(os.Args[2:]) //nolint:errcheck // ExitOnError
		if fs.NArg() != 1 {
			err = errors.New("postmortem: need exactly one flight dump path")
			break
		}
		err = runPostmortem(os.Stdout, fs.Arg(0), *walDir)
	case "lint":
		if len(os.Args) != 3 {
			err = errors.New("lint: need exactly one url or file")
			break
		}
		err = runLint(os.Stdout, os.Args[2])
	case "-h", "--help", "help":
		usage(os.Stdout)
		return
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "obstool: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  obstool merge [-format text|prom] [-label cluster] <url-or-file>...
  obstool postmortem [-wal dir] <flight.bin>
  obstool lint <url-or-file>
`)
}

// openSource fetches an http(s) URL or opens a local file.
func openSource(source string) (io.ReadCloser, error) {
	if strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://") {
		resp, err := http.Get(source) //nolint:gosec // operator-supplied scrape target
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("%s: %s", source, resp.Status)
		}
		return resp.Body, nil
	}
	return os.Open(source)
}

// loadSnapshots reads one source's registry snapshots. The canonical shape
// is the /debug/snapshot payload {"endpoints":[...]}; a bare JSON array or
// a single snapshot object (saved views, merged views) also load.
func loadSnapshots(source string) ([]obs.Snapshot, error) {
	rc, err := openSource(source)
	if err != nil {
		return nil, err
	}
	defer rc.Close() //nolint:errcheck // read-only
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", source, err)
	}
	var payload struct {
		Endpoints []obs.Snapshot `json:"endpoints"`
	}
	if err := json.Unmarshal(data, &payload); err == nil && len(payload.Endpoints) > 0 {
		return payload.Endpoints, nil
	}
	var list []obs.Snapshot
	if err := json.Unmarshal(data, &list); err == nil && len(list) > 0 {
		return list, nil
	}
	var one obs.Snapshot
	if err := json.Unmarshal(data, &one); err == nil && (one.Label != "" || len(one.Counters) > 0) {
		return []obs.Snapshot{one}, nil
	}
	return nil, fmt.Errorf("%s: no snapshots in payload", source)
}

// shardLabel names a source in the per-shard breakdown: the host:port for
// URLs, the base name for files.
func shardLabel(source string) string {
	if strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://") {
		trimmed := strings.TrimPrefix(strings.TrimPrefix(source, "http://"), "https://")
		if i := strings.IndexByte(trimmed, '/'); i >= 0 {
			trimmed = trimmed[:i]
		}
		return trimmed
	}
	return filepath.Base(source)
}

func runMerge(w io.Writer, format, label string, sources []string) error {
	if len(sources) == 0 {
		return errors.New("merge: need at least one url or file")
	}
	var all []obs.Snapshot
	type shardView struct {
		source string
		snap   obs.Snapshot
	}
	shards := make([]shardView, 0, len(sources))
	for _, src := range sources {
		snaps, err := loadSnapshots(src)
		if err != nil {
			return err
		}
		all = append(all, snaps...)
		shards = append(shards, shardView{src, obs.MergeSnapshots(shardLabel(src), snaps...)})
	}
	cluster := obs.MergeSnapshots(label, all...)
	switch format {
	case "prom":
		obs.WriteSnapshotPrometheus(w, cluster)
	case "text":
		fmt.Fprintf(w, "cluster view %q: %d endpoints from %d sources\n", label, len(all), len(sources))
		writeSnapshotText(w, "  ", cluster)
		if len(shards) > 1 {
			for _, sh := range shards {
				fmt.Fprintf(w, "shard %s:\n", sh.source)
				writeSnapshotText(w, "  ", sh.snap)
			}
		}
	default:
		return fmt.Errorf("merge: unknown format %q", format)
	}
	return nil
}

// writeSnapshotText renders one snapshot — derived signals first, then the
// raw counters, gauges, and histogram percentiles.
func writeSnapshotText(w io.Writer, indent string, s obs.Snapshot) {
	for _, line := range derivedSignals(s) {
		fmt.Fprintf(w, "%s%s\n", indent, line)
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%scounter %-32s %d\n", indent, name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%sgauge   %-32s %g\n", indent, name, s.Gauges[name])
	}
	hists := append([]obs.HistogramSnapshot(nil), s.Histograms...)
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	for _, h := range hists {
		fmt.Fprintf(w, "%shist    %-32s n=%d sum=%g p50=%g p90=%g p99=%g\n",
			indent, h.Name, h.Count, h.Sum, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	}
	if conflicts, ok := s.Info["mergeConflicts"]; ok {
		fmt.Fprintf(w, "%smerge conflicts: %s\n", indent, conflicts)
	}
}

// derivedSignals computes the operator-level numbers no single raw metric
// carries: the pull redundancy ratio (what fraction of server pull work
// bought nothing), the delivery-delay percentiles, and the WAL append
// latency percentiles.
func derivedSignals(s obs.Snapshot) []string {
	var lines []string
	useful := s.Counters["pullschedFeedbackUseful"]
	redundant := s.Counters["pullschedFeedbackRedundant"]
	empty := s.Counters["pullschedFeedbackEmpty"]
	if total := useful + redundant + empty; total > 0 {
		lines = append(lines, fmt.Sprintf("pulls: %d useful, %d redundant, %d empty (redundancy ratio %.3f)",
			useful, redundant, empty, float64(redundant+empty)/float64(total)))
	}
	for _, h := range s.Histograms {
		switch h.Name {
		case "collectionTime":
			lines = append(lines, fmt.Sprintf("delivery delay: p50=%.3gs p90=%.3gs p99=%.3gs (n=%d)",
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Count))
		case "walAppendLatency":
			lines = append(lines, fmt.Sprintf("wal append latency: p50=%.3gs p99=%.3gs (n=%d)",
				h.Quantile(0.50), h.Quantile(0.99), h.Count))
		}
	}
	return lines
}

func runPostmortem(w io.Writer, flightPath, walDir string) error {
	events, err := obs.ReadFlightDumpFile(flightPath)
	if err != nil && !errors.Is(err, obs.ErrFlightCorrupt) {
		return err
	}
	fmt.Fprintf(w, "flight dump %s: %d events\n", flightPath, len(events))
	if err != nil {
		fmt.Fprintf(w, "  WARNING: dump damaged past that point: %v\n", err)
	}
	for _, ev := range events {
		line := fmt.Sprintf("  t=%-12.6f %-12s actor=%d", ev.T, ev.Kind, ev.Actor)
		if ev.Seg.Origin != 0 || ev.Seg.Seq != 0 {
			line += fmt.Sprintf(" seg=%d/%d", ev.Seg.Origin, ev.Seg.Seq)
		}
		if ev.TraceID != 0 {
			line += fmt.Sprintf(" trace=%016x hop=%d", ev.TraceID, ev.Hop)
		}
		if ev.N != 0 {
			line += fmt.Sprintf(" n=%d", ev.N)
		}
		fmt.Fprintln(w, line)
	}

	if walDir == "" {
		walDir = filepath.Dir(flightPath)
	}
	stats, werr := wal.Inspect(walDir)
	if werr != nil {
		// A flight dump without a WAL next to it is still a useful artifact
		// (durability may be disabled); report and carry on.
		fmt.Fprintf(w, "wal %s: not inspectable: %v\n", walDir, werr)
		return nil
	}
	fmt.Fprintf(w, "wal %s: recoverable state\n", walDir)
	fmt.Fprintf(w, "  snapshot loaded:   %v (%d segments)\n", stats.SnapshotLoaded, stats.SnapshotSegments)
	fmt.Fprintf(w, "  replayed records:  %d\n", stats.ReplayedRecords)
	fmt.Fprintf(w, "  torn tail:         %v\n", stats.TornTail)
	fmt.Fprintf(w, "  open segments:     %d (total rank %d, %d decodable)\n",
		stats.OpenSegments, stats.TotalRank, stats.DecodedPending)
	return nil
}

func runLint(w io.Writer, source string) error {
	rc, err := openSource(source)
	if err != nil {
		return err
	}
	defer rc.Close() //nolint:errcheck // read-only
	if err := obs.LintExposition(rc); err != nil {
		return fmt.Errorf("lint %s: %w", source, err)
	}
	fmt.Fprintf(w, "%s: exposition ok\n", source)
	return nil
}
