package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"p2pcollect/internal/collect/store/wal"
	"p2pcollect/internal/live"
	"p2pcollect/internal/obs"
	"p2pcollect/internal/randx"
	"p2pcollect/internal/rlnc"
	"p2pcollect/internal/transport"
)

// TestMergeLiveShardSnapshots is the fleet-aggregation acceptance test: a
// real 2-shard fleet runs until it has delivered traffic, each shard's
// registry is served on its own live debug endpoint, and obstool merge
// scrapes both and must fold them into one cluster view whose counters
// are the exact per-shard sums.
func TestMergeLiveShardSnapshots(t *testing.T) {
	delivered := make(chan struct{}, 64)
	cluster, err := live.StartCluster(live.ClusterConfig{
		Peers:   8,
		Servers: 2,
		Degree:  3,
		Fleet:   true,
		Node: live.NodeConfig{
			SegmentSize: 4,
			BlockSize:   64,
			Lambda:      6,
			Mu:          60,
			Gamma:       0.2,
			BufferCap:   256,
		},
		PullRate: 200,
		OnSegment: func(rlnc.SegmentID, [][]byte) {
			select {
			case delivered <- struct{}{}:
			default:
			}
		},
		Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	for i := 0; i < 5; i++ {
		select {
		case <-delivered:
		case <-time.After(15 * time.Second):
			t.Fatal("fleet delivered no segments in time")
		}
	}
	// Freeze the counters before scraping so the merged totals can be
	// checked against the per-shard snapshots exactly.
	cluster.Stop()

	var urls []string
	for _, srv := range cluster.Servers {
		d, err := obs.Serve("127.0.0.1:0", srv.Registry())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		urls = append(urls, d.URL()+"/debug/snapshot")
	}

	var out bytes.Buffer
	if err := runMerge(&out, "text", "cluster", urls); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "2 endpoints from 2 sources") {
		t.Fatalf("merge did not see both shards:\n%s", text)
	}

	// The merged counter must equal the sum over the live shard registries.
	var want int64
	for _, srv := range cluster.Servers {
		want += srv.Registry().Snapshot().Counters["blocksReceived"]
	}
	if want == 0 {
		t.Fatal("no shard counted received blocks — test fed no traffic")
	}
	wantLine := fmt.Sprintf("counter %-32s %d", "blocksReceived", want)
	if !strings.Contains(text, wantLine) {
		t.Fatalf("merged view missing %q:\n%s", wantLine, text)
	}

	// The Prometheus rendering of the same merge must itself pass the
	// exposition lint — obstool's output can be re-exported.
	out.Reset()
	if err := runMerge(&out, "prom", "cluster", urls); err != nil {
		t.Fatal(err)
	}
	if err := obs.LintExposition(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("merged prom output fails lint: %v\n%s", err, out.String())
	}
}

// TestPostmortemDecodesCrashStopDump crash-stops a durable server mid-run
// and requires obstool postmortem to decode the flight recorder's last
// moments (including the serverCrash marker) and report the WAL state a
// restart would recover, without mutating the WAL directory.
func TestPostmortemDecodesCrashStopDump(t *testing.T) {
	const numSegs, size, payloadLen = 4, 4, 64
	dir := t.TempDir()
	net := transport.NewNetwork()
	peerTr := net.Join(1)
	defer peerTr.Close()

	srv, err := live.NewServer(net.Join(1000), live.ServerConfig{
		Peers:       []transport.NodeID{1},
		SegmentSize: size,
		Seed:        1,
		Durability: wal.Config{
			Dir:  dir,
			Sync: wal.SyncAlways,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	// Feed each segment rank-1 short of completion so the crash leaves
	// open collections for the WAL inspection to find.
	drv := rand.New(rand.NewSource(31))
	crng := randx.New(77)
	sent := 0
	for i := 0; i < numSegs; i++ {
		blocks := make([][]byte, size)
		for j := range blocks {
			blocks[j] = make([]byte, payloadLen)
			drv.Read(blocks[j])
		}
		seg, err := rlnc.NewSegment(rlnc.SegmentID{Origin: 42, Seq: uint64(i)}, blocks)
		if err != nil {
			t.Fatal(err)
		}
		src := seg.SourceBlocks()
		for k := 0; k < size-1; k++ {
			msg := &transport.Message{Type: transport.MsgBlock, Block: rlnc.Recode(src, crng)}
			if err := peerTr.Send(1000, msg); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().BlocksReceived < int64(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("server did not drain %d blocks in time", sent)
		}
		time.Sleep(time.Millisecond)
	}
	srv.CrashStop()

	flightPath := filepath.Join(dir, "flight.bin")
	if _, err := os.Stat(flightPath); err != nil {
		t.Fatalf("CrashStop left no flight dump: %v", err)
	}

	var out bytes.Buffer
	if err := runPostmortem(&out, flightPath, ""); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "serverCrash") {
		t.Fatalf("postmortem shows no serverCrash marker:\n%s", text)
	}
	if !strings.Contains(text, "recoverable state") {
		t.Fatalf("postmortem did not inspect the WAL:\n%s", text)
	}
	if !strings.Contains(text, fmt.Sprintf("open segments:     %d", numSegs)) {
		t.Fatalf("postmortem did not find the %d open segments:\n%s", numSegs, text)
	}

	// Postmortem must be read-only: a real recovery over the same dir must
	// still resume all open segments at full pre-crash rank.
	stats, err := wal.Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OpenSegments != numSegs || stats.TotalRank != numSegs*(size-1) {
		t.Fatalf("inspect found %d segments rank %d, want %d rank %d",
			stats.OpenSegments, stats.TotalRank, numSegs, numSegs*(size-1))
	}
}

// TestLintSubcommand checks both verdicts: a well-formed exposition passes
// and a duplicate-TYPE exposition (the bug the handler fix removed) fails.
func TestLintSubcommand(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.prom")
	if err := os.WriteFile(good, []byte("# TYPE x counter\nx 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runLint(&out, good); err != nil {
		t.Fatalf("good exposition rejected: %v", err)
	}
	if err := runLint(&out, bad); err == nil {
		t.Fatal("duplicate-TYPE exposition passed lint")
	}
}
