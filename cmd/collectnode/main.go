// Command collectnode runs one live participant of the indirect collection
// protocol: either a peer (generating and gossiping coded statistics
// blocks) or a logging server (pulling and decoding segments).
//
// A three-participant session on one machine over TCP with a static
// topology:
//
//	collectnode -mode peer   -id 1 -listen 127.0.0.1:7001 \
//	    -book 2=127.0.0.1:7002,3=127.0.0.1:7003 -neighbors 2
//	collectnode -mode peer   -id 2 -listen 127.0.0.1:7002 \
//	    -book 1=127.0.0.1:7001,3=127.0.0.1:7003 -neighbors 1
//	collectnode -mode server -id 3 -listen 127.0.0.1:7003 \
//	    -book 1=127.0.0.1:7001,2=127.0.0.1:7002 -peers 1,2
//
// With -transport=udp every message rides one fire-and-forget datagram,
// and -join replaces the static topology with SWIM gossip membership: name
// a few seed members and the process discovers the rest by rumor, so
// neither -neighbors, -peers, nor a full -book is needed:
//
//	collectnode -mode peer   -id 1 -transport udp -listen 127.0.0.1:7001
//	collectnode -mode peer   -id 2 -transport udp -listen 127.0.0.1:7002 \
//	    -join 1=127.0.0.1:7001
//	collectnode -mode server -id 3 -transport udp -listen 127.0.0.1:7003 \
//	    -join 1=127.0.0.1:7001,2=127.0.0.1:7002
//
// The process runs until the duration elapses (or forever with -duration 0,
// until SIGINT) and prints its statistics on exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"p2pcollect"
	"p2pcollect/internal/logdata"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collectnode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collectnode", flag.ContinueOnError)
	var (
		mode       = fs.String("mode", "peer", "peer or server")
		id         = fs.Uint64("id", 1, "node id (unique across the session)")
		listen     = fs.String("listen", "127.0.0.1:0", "listen address")
		trKind     = fs.String("transport", "tcp", "transport: tcp (reliable streams) or udp (one fire-and-forget datagram per message)")
		book       = fs.String("book", "", "address book: id=addr,id=addr,...")
		neighbors  = fs.String("neighbors", "", "peer mode: comma-separated neighbor ids (static topology)")
		peersList  = fs.String("peers", "", "server mode: comma-separated peer ids to pull from (static topology)")
		joinList   = fs.String("join", "", "SWIM membership seeds as id=addr,...: replaces -neighbors/-peers with gossip-discovered membership")
		swimPeriod = fs.Float64("swim-period", 0, "SWIM probe period in seconds (0 = default)")
		duration   = fs.Duration("duration", 0, "how long to run (0 = until SIGINT)")

		segSize       = fs.Int("s", 8, "segment size")
		blockSize     = fs.Int("blocksize", logdata.RecordSize, "payload bytes per block")
		lambda        = fs.Float64("lambda", 5, "blocks generated per second")
		mu            = fs.Float64("mu", 10, "gossip blocks per second")
		gamma         = fs.Float64("gamma", 0.2, "block expiry rate per second")
		bufferCap     = fs.Int("buffer", 512, "buffer capacity in blocks")
		pullRate      = fs.Float64("pullrate", 20, "server pulls per second")
		decodeWorkers = fs.Int("decode-workers", 0, "server mode: decode completed segments on this many workers (0 = synchronous)")
		shards        = fs.Int("shards", 0, "server mode: total shard count of the fleet this server belongs to (0 or 1 = standalone)")
		shardID       = fs.Int("shard-id", 0, "server mode: this server's shard index in [0, shards)")
		shardBook     = fs.String("shard-book", "", "server mode: shardID=nodeID,... mapping every fleet shard to its transport id (addresses come from -book)")
		walDir        = fs.String("wal-dir", "", "server mode: persist collection state in a write-ahead log under this directory; a restart recovers and resumes (empty = in-RAM only)")
		walSync       = fs.String("wal-sync", "interval", "server mode: WAL fsync policy: none, interval (group commit), or always")
		snapshotEvery = fs.Int("snapshot-every", 0, "server mode: snapshot decoder state every N logged blocks to bound replay (0 = default 8192)")
		traceSample   = fs.Float64("trace-sample", 0, "peer mode: fraction of injected segments stamped with a wire-level trace id (0 = off, frames stay byte-identical)")
		flightPath    = fs.String("flight-path", "", "server mode: write the crash flight-recorder dump here on hard stop or panic (empty = <wal-dir>/flight.bin when -wal-dir is set)")
		seed          = fs.Int64("seed", time.Now().UnixNano(), "random seed")
		outPath       = fs.String("out", "", "server mode: append recovered records to this CSV file")
		statsAddr     = fs.String("stats-addr", "", "serve live JSON stats over HTTP on this address (e.g. 127.0.0.1:8080)")
		debugAddr     = fs.String("debug-addr", "", "serve the observability endpoint (Prometheus /metrics, JSON /debug/snapshot, pprof) on this address (e.g. 127.0.0.1:8090)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	addrBook, err := parseBook(*book)
	if err != nil {
		return err
	}
	var tr p2pcollect.Transport
	var listenAddr string
	switch *trKind {
	case "tcp":
		t, err := p2pcollect.NewTCPTransport(p2pcollect.NodeID(*id), *listen, addrBook)
		if err != nil {
			return err
		}
		tr, listenAddr = t, t.Addr()
	case "udp":
		t, err := p2pcollect.NewUDPTransport(p2pcollect.NodeID(*id), *listen, addrBook)
		if err != nil {
			return err
		}
		tr, listenAddr = t, t.Addr()
	default:
		return fmt.Errorf("unknown -transport %q (want tcp or udp)", *trKind)
	}
	fmt.Printf("node %d listening on %s (%s)\n", *id, listenAddr, *trKind)

	// -join switches from static topology to SWIM gossip membership: the
	// listed members bootstrap the detector and everything else arrives by
	// rumor.
	var swim *p2pcollect.MembershipConfig
	if *joinList != "" {
		seeds, err := parseJoin(*joinList)
		if err != nil {
			return fmt.Errorf("-join: %w", err)
		}
		swim = &p2pcollect.MembershipConfig{Seeds: seeds, Period: *swimPeriod}
	} else if *trKind == "udp" && *neighbors == "" && *peersList == "" {
		// The first member of a gossip cluster has nobody to name: it
		// bootstraps standalone and is discovered when later nodes -join it.
		swim = &p2pcollect.MembershipConfig{Period: *swimPeriod}
	}

	stopAfter := make(<-chan time.Time)
	if *duration > 0 {
		stopAfter = time.After(*duration)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	switch *mode {
	case "peer":
		ids, err := parseIDs(*neighbors)
		if err != nil {
			return fmt.Errorf("-neighbors: %w", err)
		}
		if len(ids) == 0 && swim == nil {
			return fmt.Errorf("peer mode needs -neighbors (or -join for gossip membership)")
		}
		node, err := p2pcollect.NewNode(tr, p2pcollect.NodeConfig{
			SegmentSize: *segSize,
			BlockSize:   *blockSize,
			Lambda:      *lambda,
			Mu:          *mu,
			Gamma:       *gamma,
			BufferCap:   *bufferCap,
			Neighbors:   ids,
			Membership:  swim,
			Seed:        *seed,
			DebugAddr:   *debugAddr,
			TraceSample: *traceSample,
		})
		if err != nil {
			return err
		}
		stopStats, err := serveStats(*statsAddr, func() any { return node.Stats() })
		if err != nil {
			return err
		}
		defer stopStats()
		if err := node.Start(); err != nil {
			return err
		}
		if url := node.DebugURL(); url != "" {
			fmt.Printf("debug endpoint at %s/metrics\n", url)
		}
		select {
		case <-sig:
		case <-stopAfter:
		}
		node.Stop()
		fmt.Printf("peer stats: %+v\n", node.Stats())
		return nil

	case "server":
		ids, err := parseIDs(*peersList)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		srvCfg := p2pcollect.ServerConfig{
			PullRate:      *pullRate,
			Peers:         ids,
			Membership:    swim,
			Seed:          *seed,
			DebugAddr:     *debugAddr,
			DecodeWorkers: *decodeWorkers,
			FlightPath:    *flightPath,
		}
		if *walDir != "" {
			sm, err := p2pcollect.ParseWALSyncMode(*walSync)
			if err != nil {
				return err
			}
			srvCfg.Durability = p2pcollect.Durability{
				Dir:           *walDir,
				Sync:          sm,
				SnapshotEvery: *snapshotEvery,
			}
		}
		if *shards > 1 {
			sp, err := parseShardBook(*shardBook)
			if err != nil {
				return fmt.Errorf("-shard-book: %w", err)
			}
			srvCfg.Shards = *shards
			srvCfg.ShardID = *shardID
			srvCfg.ShardPeers = sp
			// Each process runs its own journal: it dedups local decodes;
			// cross-process dedup rides on the fleet's completion notices.
			// With a WAL directory the journal is durable too, so a
			// restarted shard never re-delivers a segment it already
			// claimed.
			if *walDir != "" {
				j, jc, err := p2pcollect.OpenDeliveryJournal(filepath.Join(*walDir, "journal.claims"), 0)
				if err != nil {
					return err
				}
				defer jc.Close()
				srvCfg.Journal = j
			} else {
				srvCfg.Journal = p2pcollect.NewDeliveryJournal(0)
			}
		}
		srv, err := p2pcollect.NewServer(tr, srvCfg)
		if err != nil {
			return err
		}
		var csv *logdata.CSVWriter
		if *outPath != "" {
			f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("open -out: %w", err)
			}
			defer f.Close()
			csv = logdata.NewCSVWriter(f)
		}
		srv.OnSegment = func(segID p2pcollect.SegmentID, blocks [][]byte) {
			records := 0
			for _, b := range blocks {
				if csv != nil {
					if n, err := csv.WriteBlock(b); err == nil {
						records += n
						continue
					}
				}
				if rs, err := logdata.UnpackRecords(b); err == nil {
					records += len(rs)
				}
			}
			fmt.Printf("decoded segment %v: %d blocks, %d records\n", segID, len(blocks), records)
		}
		stopStats, err := serveStats(*statsAddr, func() any { return srv.Stats() })
		if err != nil {
			return err
		}
		defer stopStats()
		if err := srv.Start(); err != nil {
			return err
		}
		if url := srv.DebugURL(); url != "" {
			fmt.Printf("debug endpoint at %s/metrics\n", url)
		}
		select {
		case <-sig:
		case <-stopAfter:
		}
		srv.Stop()
		fmt.Printf("server stats: %+v\n", srv.Stats())
		return nil

	default:
		return fmt.Errorf("unknown -mode %q (want peer or server)", *mode)
	}
}

// serveStats exposes the snapshot function as JSON on GET /stats. It
// returns a stop function (a no-op when addr is empty).
func serveStats(addr string, snapshot func() any) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stats listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	server := &http.Server{Handler: mux}
	go server.Serve(ln) //nolint:errcheck // closed on stop
	fmt.Printf("stats at http://%s/stats\n", ln.Addr())
	return func() { server.Close() }, nil
}

// parseBook parses "id=addr,id=addr" into an address book.
func parseBook(s string) (map[p2pcollect.NodeID]string, error) {
	book := make(map[p2pcollect.NodeID]string)
	if s == "" {
		return book, nil
	}
	for _, entry := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad book entry %q (want id=addr)", entry)
		}
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad book id %q: %w", id, err)
		}
		book[p2pcollect.NodeID(n)] = addr
	}
	return book, nil
}

// parseJoin parses "id=addr,..." into SWIM seed members. Seeds are
// assumed to be peers; their true role is corrected by the first direct
// contact or rumor.
func parseJoin(s string) ([]p2pcollect.Member, error) {
	book, err := parseBook(s)
	if err != nil {
		return nil, err
	}
	seeds := make([]p2pcollect.Member, 0, len(book))
	for id, addr := range book {
		seeds = append(seeds, p2pcollect.Member{ID: id, Addr: addr, Role: p2pcollect.MemberPeer})
	}
	return seeds, nil
}

// parseShardBook parses "0=3,1=4" into a shard-index → node-ID map.
func parseShardBook(s string) (map[int]p2pcollect.NodeID, error) {
	if s == "" {
		return nil, fmt.Errorf("a fleet server needs -shard-book")
	}
	book := make(map[int]p2pcollect.NodeID)
	for _, entry := range strings.Split(s, ",") {
		sid, nid, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want shardID=nodeID)", entry)
		}
		si, err := strconv.Atoi(strings.TrimSpace(sid))
		if err != nil {
			return nil, fmt.Errorf("bad shard id %q: %w", sid, err)
		}
		ni, err := strconv.ParseUint(strings.TrimSpace(nid), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q: %w", nid, err)
		}
		book[si] = p2pcollect.NodeID(ni)
	}
	return book, nil
}

// parseIDs parses "1,2,3" into node IDs.
func parseIDs(s string) ([]p2pcollect.NodeID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]p2pcollect.NodeID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad id %q: %w", p, err)
		}
		ids = append(ids, p2pcollect.NodeID(n))
	}
	return ids, nil
}
