package main

import (
	"testing"

	"p2pcollect"
)

func TestParseBook(t *testing.T) {
	book, err := parseBook("1=127.0.0.1:7001,2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(book) != 2 || book[1] != "127.0.0.1:7001" || book[2] != "127.0.0.1:7002" {
		t.Errorf("book = %v", book)
	}
	if got, err := parseBook(""); err != nil || len(got) != 0 {
		t.Errorf("empty book: %v, %v", got, err)
	}
	if _, err := parseBook("nonsense"); err == nil {
		t.Error("malformed book accepted")
	}
	if _, err := parseBook("x=addr"); err == nil {
		t.Error("non-numeric id accepted")
	}
}

func TestParseIDs(t *testing.T) {
	ids, err := parseIDs("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []p2pcollect.NodeID{1, 2, 3}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if got, err := parseIDs(""); err != nil || got != nil {
		t.Errorf("empty ids: %v, %v", got, err)
	}
	if _, err := parseIDs("1,x"); err == nil {
		t.Error("bad id accepted")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if err := run([]string{"-mode", "nonsense", "-listen", "127.0.0.1:0", "-duration", "1ms"}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestRunPeerNeedsNeighbors(t *testing.T) {
	if err := run([]string{"-mode", "peer", "-listen", "127.0.0.1:0", "-duration", "1ms"}); err == nil {
		t.Error("peer without neighbors accepted")
	}
}

func TestRunPeerBriefly(t *testing.T) {
	err := run([]string{
		"-mode", "peer", "-id", "1", "-listen", "127.0.0.1:0",
		"-neighbors", "2", "-duration", "100ms",
		"-lambda", "50", "-mu", "10", "-gamma", "1", "-s", "2",
	})
	if err != nil {
		t.Fatalf("brief peer run: %v", err)
	}
}

func TestRunServerBriefly(t *testing.T) {
	err := run([]string{
		"-mode", "server", "-id", "9", "-listen", "127.0.0.1:0",
		"-peers", "1,2", "-duration", "100ms", "-pullrate", "10",
	})
	if err != nil {
		t.Fatalf("brief server run: %v", err)
	}
}

func TestServeStatsEndpoint(t *testing.T) {
	stop, err := serveStats("", func() any { return nil })
	if err != nil {
		t.Fatal(err)
	}
	stop() // no-op path

	type snap struct{ Pulls int }
	stop2, err := serveStats("127.0.0.1:0", func() any { return snap{Pulls: 7} })
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
}

func TestRunServerWithCSVOut(t *testing.T) {
	out := t.TempDir() + "/records.csv"
	err := run([]string{
		"-mode", "server", "-id", "9", "-listen", "127.0.0.1:0",
		"-peers", "1", "-duration", "100ms", "-pullrate", "5",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("server with -out: %v", err)
	}
}
