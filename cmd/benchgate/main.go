// Command benchgate compares a `go test -bench` run against a committed
// baseline JSON (BENCH_*.json) and fails the build on performance
// regressions. Two rules:
//
//   - ns/op may not regress by more than -tolerance (default 30%) over the
//     baseline for any benchmark present in the baseline;
//   - a benchmark whose baseline records 0 allocs/op may not allocate at
//     all — those are the steady-state hot paths, and a single alloc/op is
//     a structural regression no timing tolerance should forgive.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/gf256 ... | benchgate -baseline BENCH_coding.json
//	benchgate -baseline BENCH_coding.json -input bench.txt
//	benchgate -baseline BENCH_coding.json -input bench.txt -update   # rewrite baseline from run
//
// Benchmarks in the run but absent from the baseline are ignored (new
// benchmarks don't break the gate until they are enrolled); benchmarks in
// the baseline but absent from the run fail it, so coverage cannot rot
// silently.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"p2pcollect/internal/benchcmp"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "path to the committed BENCH_*.json baseline (required)")
		inputPath    = flag.String("input", "-", "go test -bench output to check; - reads stdin")
		tolerance    = flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression (0.30 = 30%)")
		update       = flag.Bool("update", false, "rewrite the baseline's numbers from this run instead of checking")
	)
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}

	baseline, err := benchcmp.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	run, err := benchcmp.ParseBenchOutput(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	if *update {
		if err := baseline.UpdateFrom(run, *baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: rewrote %s from %d measured benchmarks\n", *baselinePath, len(run))
		return
	}

	report := benchcmp.Compare(baseline, run, *tolerance)
	for _, line := range report.Lines {
		fmt.Println(line)
	}
	if len(report.Problems) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: FAIL — %d problem(s):\n", len(report.Problems))
		for _, p := range report.Problems {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok — %d benchmark(s) within tolerance %.0f%%\n", report.Checked, *tolerance*100)
}
