// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced scale (one benchmark per figure/table, using the same harness
// as cmd/collectsim), plus kernel benchmarks for the hot paths: GF(2^8)
// arithmetic, RLNC re-encoding and decoding, the event loop, and the ODE
// solver.
//
// Figure benchmarks report a "series" metric (number of curves produced) so
// a regression that silently drops a curve is visible in the bench output.
package p2pcollect_test

import (
	"testing"

	"p2pcollect"
	"p2pcollect/internal/experiments"
	"p2pcollect/internal/metrics"
	"p2pcollect/internal/ode"
	"p2pcollect/internal/randx"
	"p2pcollect/internal/rlnc"
)

// benchOptions trims the experiment harness to benchmark scale.
func benchOptions() experiments.Options {
	return experiments.Options{N: 60, Horizon: 12, Warmup: 5, Seed: 17, Quick: true}
}

func benchExperiment(b *testing.B, gen func(experiments.Options) (*metrics.Table, error)) {
	b.Helper()
	var tbl *metrics.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = gen(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if tbl != nil {
		b.ReportMetric(float64(len(tbl.Series())), "series")
	}
}

// BenchmarkFig3 regenerates Fig. 3 (throughput vs segment size).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, experiments.Fig3) }

// BenchmarkFig4 regenerates Fig. 4 (throughput vs mu under churn).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, experiments.Fig4) }

// BenchmarkFig5 regenerates Fig. 5 (block delivery delay).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, experiments.Fig5) }

// BenchmarkFig6 regenerates Fig. 6 (data saved per peer).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, experiments.Fig6) }

// BenchmarkOverheadTable regenerates T1 (Theorem 1 storage overhead).
func BenchmarkOverheadTable(b *testing.B) { benchExperiment(b, experiments.OverheadTable) }

// BenchmarkS1ClosedForm regenerates T2 (non-coding closed form vs m-system
// vs simulation).
func BenchmarkS1ClosedForm(b *testing.B) { benchExperiment(b, experiments.S1Table) }

// BenchmarkBaseline regenerates T3 (flash crowd: direct pull vs indirect).
func BenchmarkBaseline(b *testing.B) { benchExperiment(b, experiments.BaselineTable) }

// BenchmarkDrain regenerates T4 (post-session delayed delivery).
func BenchmarkDrain(b *testing.B) { benchExperiment(b, experiments.DrainTable) }

// BenchmarkAblation regenerates A1 (mean-field sampling ablation).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, experiments.AblationTable) }

// BenchmarkFeedback regenerates A2 (server-feedback extension).
func BenchmarkFeedback(b *testing.B) { benchExperiment(b, experiments.FeedbackTable) }

// BenchmarkServers regenerates A3 (server collaboration ablation).
func BenchmarkServers(b *testing.B) { benchExperiment(b, experiments.ServersTable) }

// BenchmarkTopology regenerates A4 (overlay connectivity ablation).
func BenchmarkTopology(b *testing.B) { benchExperiment(b, experiments.TopologyTable) }

// BenchmarkCodingCost regenerates A5 (coding cost vs segment size).
func BenchmarkCodingCost(b *testing.B) { benchExperiment(b, experiments.CodingCostTable) }

// BenchmarkTransient regenerates T5 (Wormald transient validation).
func BenchmarkTransient(b *testing.B) { benchExperiment(b, experiments.TransientTable) }

// BenchmarkFlashJoin regenerates T6 (transient flash crowd of arrivals).
func BenchmarkFlashJoin(b *testing.B) { benchExperiment(b, experiments.FlashJoinTable) }

// BenchmarkSimulatorEvents measures raw simulator speed and reports
// processed events per operation.
func BenchmarkSimulatorEvents(b *testing.B) {
	cfg := p2pcollect.SimConfig{
		N: 100, Lambda: 10, Mu: 8, Gamma: 1, SegmentSize: 8,
		BufferCap: 128, C: 4, Warmup: 2, Horizon: 10, Seed: 3,
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := p2pcollect.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkODESolve measures the steady-state solver at a Fig. 3 operating
// point.
func BenchmarkODESolve(b *testing.B) {
	p := ode.Params{Lambda: 20, Mu: 10, Gamma: 1, C: 8, S: 20}
	for i := 0; i < b.N; i++ {
		if _, err := ode.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecode measures gossip-path re-encoding (s=32, 1 KiB blocks).
func BenchmarkRecode(b *testing.B) {
	rng := randx.New(5)
	blocks := make([][]byte, 32)
	for i := range blocks {
		blocks[i] = make([]byte, 1024)
		rng.FillCoefficients(blocks[i])
	}
	seg, err := rlnc.NewSegment(rlnc.SegmentID{Origin: 1, Seq: 1}, blocks)
	if err != nil {
		b.Fatal(err)
	}
	src := seg.SourceBlocks()
	b.SetBytes(32 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rlnc.Recode(src, rng)
	}
}

// BenchmarkDecodeSegment measures full segment reconstruction at the
// server (s=32, 1 KiB blocks).
func BenchmarkDecodeSegment(b *testing.B) {
	rng := randx.New(6)
	blocks := make([][]byte, 32)
	for i := range blocks {
		blocks[i] = make([]byte, 1024)
		rng.FillCoefficients(blocks[i])
	}
	id := rlnc.SegmentID{Origin: 1, Seq: 1}
	seg, err := rlnc.NewSegment(id, blocks)
	if err != nil {
		b.Fatal(err)
	}
	coded := make([]*rlnc.CodedBlock, 48)
	for i := range coded {
		coded[i] = seg.Encode(rng)
	}
	b.SetBytes(32 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := rlnc.NewDecoder(id, 32, 1024)
		for _, cb := range coded {
			if _, err := dec.Add(cb); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatal("decoder incomplete")
		}
	}
}
