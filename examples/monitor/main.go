// Monitor closes the loop the paper motivates: a live in-process deployment
// where peers stream real vital-statistics records through the indirect
// collection mechanism, and an operator-side aggregator behind the logging
// servers produces the per-channel health report and worst-peer list used
// to diagnose the system. The cluster also serves its observability
// endpoint, and the report ends with an infrastructure-health section built
// the way an external dashboard would: by scraping the JSON snapshot over
// HTTP rather than touching any in-process state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"p2pcollect"
	"p2pcollect/internal/logdata"
	"p2pcollect/internal/obs"
)

func main() {
	peers := flag.Int("peers", 16, "number of live peers")
	duration := flag.Duration("duration", 4*time.Second, "collection window")
	flag.Parse()
	if err := run(*peers, *duration); err != nil {
		log.Fatal(err)
	}
}

func run(peers int, duration time.Duration) error {
	var mu sync.Mutex
	agg := logdata.NewAggregator()
	decodedSegments := 0

	cluster, err := p2pcollect.StartCluster(p2pcollect.ClusterConfig{
		Peers:   peers,
		Servers: 2,
		Degree:  4,
		Node: p2pcollect.NodeConfig{
			SegmentSize: 4,
			BlockSize:   2 * logdata.RecordSize,
			Lambda:      30,
			Mu:          60,
			Gamma:       1,
			BufferCap:   512,
		},
		PullRate:  120,
		Seed:      time.Now().UnixNano(),
		DebugAddr: "127.0.0.1:0",
		OnSegment: func(id p2pcollect.SegmentID, blocks [][]byte) {
			mu.Lock()
			defer mu.Unlock()
			decodedSegments++
			for _, b := range blocks {
				agg.AddBlock(b) //nolint:errcheck // synthetic payloads are well-formed
			}
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("collecting vital statistics from %d peers for %v...\n", peers, duration)
	fmt.Printf("observability endpoint: %s/metrics\n", cluster.Debug.URL())
	time.Sleep(duration)

	// Scrape the infrastructure view over HTTP before stopping, exactly as
	// an external dashboard would.
	snap, scrapeErr := scrapeSnapshot(cluster.Debug.URL() + "/debug/snapshot")
	cluster.Stop()

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nlogging servers reconstructed %d segments -> %d records from %d peers\n\n",
		decodedSegments, agg.Records(), agg.PeerCount())

	fmt.Println("channel   records  peers  continuity  buffer(s)  down(kbps)  loss    degraded")
	for _, ch := range agg.Channels() {
		fmt.Printf("%7d  %8d  %5d  %10.3f  %9.1f  %10.0f  %.4f  %7.1f%%\n",
			ch.ChannelID, ch.Records, ch.Peers, ch.MeanContinuity,
			ch.MeanBufferLevel, ch.MeanDownload, ch.MeanLoss, 100*ch.DegradedFraction)
	}

	fmt.Println("\npeers with the worst observed playback continuity:")
	for _, p := range agg.WorstPeers(5) {
		fmt.Printf("  peer %-4d  %3d records  continuity %.3f  loss %.4f\n",
			p.PeerID, p.Records, p.MeanContinuity, p.MeanLoss)
	}
	if scrapeErr != nil {
		return fmt.Errorf("scrape observability snapshot: %w", scrapeErr)
	}
	printInfrastructure(snap)

	if agg.Records() == 0 {
		return fmt.Errorf("no records collected; try a longer -duration")
	}
	return nil
}

// scrapeSnapshot GETs and decodes the cluster's JSON observability snapshot.
func scrapeSnapshot(url string) ([]obs.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var doc struct {
		Endpoints []obs.Snapshot `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Endpoints, nil
}

// printInfrastructure renders the scraped observability snapshot: per-server
// pull latency and collection-time percentiles plus the pull-budget split,
// and the peers' aggregate buffer pressure.
func printInfrastructure(endpoints []obs.Snapshot) {
	fmt.Println("\ninfrastructure health (scraped from /debug/snapshot):")
	var buffered, peers float64
	for _, ep := range endpoints {
		if _, ok := ep.Gauges["bufferedBlocks"]; ok {
			buffered += ep.Gauges["bufferedBlocks"]
			peers++
			continue
		}
		useful := ep.Counters["pullschedFeedbackUseful"]
		redundant := ep.Counters["pullschedFeedbackRedundant"]
		empty := ep.Counters["pullschedFeedbackEmpty"]
		fmt.Printf("  %s (policy %s): pulls useful/redundant/empty = %d/%d/%d\n",
			ep.Label, ep.Info["policy"], useful, redundant, empty)
		for _, h := range ep.Histograms {
			if h.Count == 0 {
				continue
			}
			switch h.Name {
			case "pullRTT":
				fmt.Printf("    pull RTT        p50=%.1fms p99=%.1fms (n=%d)\n",
					h.P50*1000, h.P99*1000, h.Count)
			case "collectionTime":
				fmt.Printf("    collection time p50=%.2fs p99=%.2fs (n=%d)\n",
					h.P50, h.P99, h.Count)
			}
		}
	}
	if peers > 0 {
		fmt.Printf("  peers: mean buffer occupancy %.1f blocks across %.0f nodes\n",
			buffered/peers, peers)
	}
}
