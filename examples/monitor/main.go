// Monitor closes the loop the paper motivates: a live in-process deployment
// where peers stream real vital-statistics records through the indirect
// collection mechanism, and an operator-side aggregator behind the logging
// servers produces the per-channel health report and worst-peer list used
// to diagnose the system.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"p2pcollect"
	"p2pcollect/internal/logdata"
)

func main() {
	peers := flag.Int("peers", 16, "number of live peers")
	duration := flag.Duration("duration", 4*time.Second, "collection window")
	flag.Parse()
	if err := run(*peers, *duration); err != nil {
		log.Fatal(err)
	}
}

func run(peers int, duration time.Duration) error {
	var mu sync.Mutex
	agg := logdata.NewAggregator()
	decodedSegments := 0

	cluster, err := p2pcollect.StartCluster(p2pcollect.ClusterConfig{
		Peers:   peers,
		Servers: 2,
		Degree:  4,
		Node: p2pcollect.NodeConfig{
			SegmentSize: 4,
			BlockSize:   2 * logdata.RecordSize,
			Lambda:      30,
			Mu:          60,
			Gamma:       1,
			BufferCap:   512,
		},
		PullRate: 120,
		Seed:     time.Now().UnixNano(),
		OnSegment: func(id p2pcollect.SegmentID, blocks [][]byte) {
			mu.Lock()
			defer mu.Unlock()
			decodedSegments++
			for _, b := range blocks {
				agg.AddBlock(b) //nolint:errcheck // synthetic payloads are well-formed
			}
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("collecting vital statistics from %d peers for %v...\n", peers, duration)
	time.Sleep(duration)
	cluster.Stop()

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nlogging servers reconstructed %d segments -> %d records from %d peers\n\n",
		decodedSegments, agg.Records(), agg.PeerCount())

	fmt.Println("channel   records  peers  continuity  buffer(s)  down(kbps)  loss    degraded")
	for _, ch := range agg.Channels() {
		fmt.Printf("%7d  %8d  %5d  %10.3f  %9.1f  %10.0f  %.4f  %7.1f%%\n",
			ch.ChannelID, ch.Records, ch.Peers, ch.MeanContinuity,
			ch.MeanBufferLevel, ch.MeanDownload, ch.MeanLoss, 100*ch.DegradedFraction)
	}

	fmt.Println("\npeers with the worst observed playback continuity:")
	for _, p := range agg.WorstPeers(5) {
		fmt.Printf("  peer %-4d  %3d records  continuity %.3f  loss %.4f\n",
			p.PeerID, p.Records, p.MeanContinuity, p.MeanLoss)
	}
	if agg.Records() == 0 {
		return fmt.Errorf("no records collected; try a longer -duration")
	}
	return nil
}
