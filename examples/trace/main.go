// Trace: follow individual segments across a sharded collection fleet.
//
// With TraceSample set, each node stamps a sampled fraction of its injected
// segments with a cluster-unique trace ID that rides every coded block's
// wire frame. Every endpoint records the milestones it observes — inject,
// gossip hops, server rank growth, cross-shard exchange, delivery, decode —
// into its own ring tracer, exactly the way separate processes would. After
// the run, the assembler stitches those per-process dumps into end-to-end
// spans with per-hop latency attribution.
//
// Sampling draws from a dedicated RNG, so enabling it never perturbs the
// protocol: a seeded run delivers the same segment stream with tracing on
// or off.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"p2pcollect"
)

func main() {
	var delivered atomic.Int64
	var once sync.Once
	enough := make(chan struct{})

	cluster, err := p2pcollect.StartCluster(p2pcollect.ClusterConfig{
		Peers:   12,
		Servers: 2,
		Degree:  3,
		Fleet:   true, // two shards, so spans can cross the exchange path
		Node: p2pcollect.NodeConfig{
			SegmentSize: 4,
			BlockSize:   64,
			Lambda:      4,
			Mu:          40,
			Gamma:       0.5,
			BufferCap:   256,
		},
		PullRate: 120,
		Seed:     11,
		// Trace every injected segment and give each endpoint a private
		// ring, as real processes would have. Sample sparsely (e.g. 0.01)
		// on clusters you care about; the wire cost is 10 bytes per traced
		// block and zero for the rest.
		TraceSample:      1,
		PerEndpointTrace: true,
		OnSegment: func(p2pcollect.SegmentID, [][]byte) {
			if delivered.Add(1) >= 20 {
				once.Do(func() { close(enough) })
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	select {
	case <-enough:
	case <-time.After(30 * time.Second):
	}
	cluster.Stop() // freeze every ring before dumping

	// One dump per endpoint (12 nodes + 2 shard servers); in a multi-process
	// deployment these would come from each process's /debug/snapshot
	// traceTail or flight-recorder file instead.
	asm := p2pcollect.NewAssembler()
	for _, d := range cluster.Dumps() {
		asm.Add(d)
	}
	spans := asm.Assemble()

	complete := 0
	var best *p2pcollect.Span
	for i := range spans {
		if !spans[i].Complete() {
			continue
		}
		complete++
		// Show the most-traveled story: the complete span crossing the most
		// processes.
		if best == nil || len(spans[i].Processes()) > len(best.Processes()) {
			best = &spans[i]
		}
	}

	fmt.Printf("== Tracing a block across the fleet ==\n")
	fmt.Printf("delivered %d segments; %d sampled lineages, %d complete inject→deliver spans\n\n",
		delivered.Load(), len(spans), complete)
	if best == nil {
		fmt.Println("no complete span captured (rings too small or run too short)")
		return
	}
	fmt.Println(best.String())
	fmt.Println("per-hop latency attribution:")
	for _, h := range best.Hops {
		fmt.Printf("  %-10s -> %-10s %-11s %8.3fs\n", h.From, h.To, h.Kind, h.Dur)
	}
}
