// Flashcrowd reproduces the paper's motivating scenario: a flash crowd
// multiplies the statistics rate by 5× while the logging servers remain
// provisioned for ~1.5× the *average* load, and peers churn throughout. The
// direct-pull architecture overflows and permanently loses departed peers'
// logs; the indirect mechanism buffers the peak in the network and still
// recovers data of peers that have already left.
package main

import (
	"fmt"
	"log"

	"p2pcollect"
	"p2pcollect/internal/logdata"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n          = 300
		lambdaBase = 2.0
		lambdaPeak = 10.0
		burstStart = 20.0
		burstRamp  = 2.0
		burstEnd   = 35.0
		horizon    = 80.0
		churnLife  = 20.0
	)
	rate := logdata.FlashCrowdRate(lambdaBase, lambdaPeak, burstStart, burstRamp, burstEnd)
	meanLambda := (lambdaBase*(horizon-(burstEnd-burstStart)-burstRamp) +
		lambdaPeak*(burstEnd-burstStart) +
		(lambdaBase+lambdaPeak)/2*2*burstRamp) / horizon
	capacity := 1.5 * meanLambda

	fmt.Println("== Flash crowd with churn: direct pull vs indirect collection ==")
	fmt.Printf("base rate %g, burst to %g over t=[%g,%g], mean %.2f; server capacity %.2f (1.5x mean, %.1fx below peak)\n",
		lambdaBase, lambdaPeak, burstStart, burstEnd, meanLambda, capacity, lambdaPeak/capacity)
	fmt.Printf("churn: exponential lifetimes, mean %g\n\n", churnLife)

	direct, err := p2pcollect.SimulateBaseline(p2pcollect.BaselineConfig{
		N: n, LambdaAt: rate, LambdaPeak: lambdaPeak, C: capacity,
		BufferCap: 15, ChurnMeanLifetime: churnLife,
		Warmup: 5, Horizon: horizon, Seed: 11,
	})
	if err != nil {
		return fmt.Errorf("direct: %w", err)
	}

	indirect, err := p2pcollect.Simulate(p2pcollect.SimConfig{
		N: n, Lambda: meanLambda, Mu: 8, Gamma: 1, SegmentSize: 8,
		BufferCap: 256, C: capacity, ChurnMeanLifetime: churnLife,
		Warmup: 5, Horizon: horizon, Seed: 12,
	})
	if err != nil {
		return fmt.Errorf("indirect: %w", err)
	}

	fmt.Println("direct pull (traditional logging servers):")
	fmt.Printf("  delivered %.3f of offered load; lost %.1f%% of blocks (%d overflow, %d with departed peers)\n",
		direct.NormalizedThroughput, 100*direct.LossFraction(),
		direct.LostToOverflow, direct.LostToDeparture)
	fmt.Printf("  every one of the %d blocks queued at a departing peer is gone for good\n\n",
		direct.LostToDeparture)

	fmt.Println("indirect collection (RLNC gossip + coupon-collector servers):")
	fmt.Printf("  delivered %.3f of offered load at the same server capacity\n", indirect.NormalizedThroughput)
	fmt.Printf("  %d segments were orphaned by a departure before the servers finished them;\n", indirect.OrphanedSegments)
	fmt.Printf("  %d of those (%.0f%%) were still delivered afterwards from coded copies in the network\n",
		indirect.PostmortemDelivered,
		100*float64(indirect.PostmortemDelivered)/float64(max64(indirect.OrphanedSegments, 1)))
	fmt.Printf("  storage overhead stayed at %.1f blocks/peer (bound mu/gamma = %g)\n",
		indirect.StorageOverhead, 8.0)
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
