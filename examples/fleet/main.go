// Fleet: run the same overloaded collection workload against one logging
// server and against a 4-shard server fleet, and show the paper's
// aggregate-capacity argument in action — coded blocks are fungible, so
// sharding the segment space across N_s servers multiplies delivered
// throughput by ~N_s while the delivery journal keeps every segment
// exactly-once.
//
// For the multi-process equivalent over TCP, give each collectnode server
// -shards/-shard-id/-shard-book; every server pulls from all peers, and
// peers need no configuration at all — a peer answers whichever shard
// pulls it, which spreads its blocks across the fleet round-robin.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"p2pcollect"
)

const (
	peers    = 24
	degree   = 3
	pullRate = 60.0 // per shard: deliberately below the generation rate
	runFor   = 5 * time.Second
)

func nodeConfig() p2pcollect.NodeConfig {
	return p2pcollect.NodeConfig{
		SegmentSize: 8,
		BlockSize:   64,
		Lambda:      16, // blocks/s per peer: the fleet is needed to keep up
		Mu:          80,
		Gamma:       0.5,
		BufferCap:   512,
	}
}

func run(servers int, fleetMode bool) (delivered int, dupes int, exchange int64, err error) {
	var mu sync.Mutex
	seen := make(map[p2pcollect.SegmentID]int)
	cluster, err := p2pcollect.StartCluster(p2pcollect.ClusterConfig{
		Peers:    peers,
		Servers:  servers,
		Degree:   degree,
		Fleet:    fleetMode,
		Node:     nodeConfig(),
		PullRate: pullRate,
		Seed:     7,
		OnSegment: func(id p2pcollect.SegmentID, blocks [][]byte) {
			mu.Lock()
			seen[id]++
			mu.Unlock()
		},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer cluster.Stop()
	time.Sleep(runFor)
	cluster.Stop()
	for _, s := range cluster.Servers {
		exchange += s.Stats().Protocol["fleetExchangeSent"]
	}
	mu.Lock()
	defer mu.Unlock()
	for _, n := range seen {
		delivered++
		if n > 1 {
			dupes++
		}
	}
	return delivered, dupes, exchange, nil
}

func main() {
	fmt.Printf("== Sharded collection fleet ==\n")
	fmt.Printf("%d peers at lambda=%g blocks/s vs pull capacity %g/s per server:\n",
		peers, nodeConfig().Lambda, pullRate)
	fmt.Printf("one server is capacity-starved; a fleet shards the segment space.\n\n")

	single, dup1, _, err := run(1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 server : %4d segments delivered in %v (%d duplicates)\n", single, runFor, dup1)

	fleet, dup4, exchange, err := run(4, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 shards : %4d segments delivered in %v (%d duplicates, %d exchange blocks)\n",
		fleet, runFor, dup4, exchange)
	if single > 0 {
		fmt.Printf("\nscaling: %.2fx delivered-segment throughput at 4 shards\n", float64(fleet)/float64(single))
	}
}
