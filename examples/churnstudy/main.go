// Churnstudy sweeps peer churn severity against segment size, reproducing
// the crossover Fig. 4 of the paper discusses: when server capacity is
// ample, heavy coding *hurts* under churn (large segments become
// undeliverable when copies die too fast), but when capacity is scarce the
// extra redundancy of larger segments pays off even with churn.
package main

import (
	"fmt"
	"log"

	"p2pcollect"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n      = 250
		lambda = 8.0
		mu     = 10.0
		gamma  = 1.0
	)
	lifetimes := []float64{0, 20, 5, 2} // 0 = static network; smaller = harsher churn
	segments := []int{1, 8, 30}

	for _, c := range []float64{8, 2} {
		regime := "ample (c = lambda)"
		if c < lambda {
			regime = "scarce (c << lambda)"
		}
		fmt.Printf("== server capacity %s: c=%g, lambda=%g, mu=%g ==\n", regime, c, lambda, mu)
		fmt.Printf("%-14s", "churn \\ s")
		for _, s := range segments {
			fmt.Printf("  s=%-6d", s)
		}
		fmt.Println()
		for _, life := range lifetimes {
			label := "static"
			if life > 0 {
				label = fmt.Sprintf("L=%g", life)
			}
			fmt.Printf("%-14s", label)
			for _, s := range segments {
				r, err := p2pcollect.Simulate(p2pcollect.SimConfig{
					N: n, Lambda: lambda, Mu: mu, Gamma: gamma,
					SegmentSize: s, BufferCap: 200, C: c,
					ChurnMeanLifetime: life,
					Warmup:            12, Horizon: 36,
					Seed: int64(100*s) + int64(life) + int64(c),
				})
				if err != nil {
					return err
				}
				fmt.Printf("  %.3f   ", r.NormalizedThroughput)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("reading the tables: harsh churn penalizes the largest segments the most —")
	fmt.Println("s=30 loses roughly a third of its static-network throughput by L=2 while s=1")
	fmt.Println("is flat, so with ample capacity heavy coding stops paying off under churn;")
	fmt.Println("with scarce capacity the redundancy of larger segments keeps its edge in")
	fmt.Println("every row — the paper's Fig. 4 conclusion.")
	return nil
}
