// Livetcp boots a real deployment on localhost: peers running the full
// protocol over TCP — generating statistics records, gossiping coded
// blocks, expiring TTLs — and one logging server that pulls, decodes
// segments, and prints the recovered vital-statistics records. With -loss
// the deployment runs under injected message loss, demonstrating the
// fault-tolerant send path: throughput degrades, collection continues.
// With -policy the server's pulls are scheduled by a feedback-driven
// policy (rankgreedy or rarest) instead of the paper's blind baseline; the
// final useful/redundant pull split shows what the scheduling buys.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"p2pcollect"
	"p2pcollect/internal/logdata"
	"p2pcollect/internal/transport"
)

func main() {
	peers := flag.Int("peers", 6, "number of live peers")
	duration := flag.Duration("duration", 4*time.Second, "how long to run")
	loss := flag.Float64("loss", 0, "injected per-message loss probability [0,1)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Second, "per-frame TCP write deadline")
	dialTimeout := flag.Duration("dial-timeout", time.Second, "TCP dial deadline")
	policy := flag.String("policy", "blind",
		fmt.Sprintf("server pull-scheduling policy %v", p2pcollect.PullPolicies()))
	debugAddr := flag.String("debug-addr", "",
		"serve Prometheus /metrics, JSON /debug/snapshot, and pprof for every endpoint on this address (e.g. 127.0.0.1:8090)")
	flag.Parse()
	if err := run(*peers, *duration, *loss, *dialTimeout, *writeTimeout, *policy, *debugAddr); err != nil {
		log.Fatal(err)
	}
}

func run(peers int, duration time.Duration, loss float64, dialTimeout, writeTimeout time.Duration, policyName, debugAddr string) error {
	if peers < 2 {
		return fmt.Errorf("need at least 2 peers, got %d", peers)
	}
	if loss < 0 || loss >= 1 {
		return fmt.Errorf("loss %.2f outside [0, 1)", loss)
	}
	serverID := p2pcollect.NodeID(peers + 1)
	opts := p2pcollect.TCPOptions{DialTimeout: dialTimeout, WriteTimeout: writeTimeout}

	// Start every transport on an ephemeral localhost port, then exchange
	// the address book. With -loss, each endpoint is wrapped in a seeded
	// fault injector over the same production TCP path.
	book := make(map[p2pcollect.NodeID]string, peers+1)
	tcps := make([]*transport.TCPTransport, 0, peers+1)
	endpoints := make([]p2pcollect.Transport, 0, peers+1)
	for i := 1; i <= peers+1; i++ {
		tr, err := p2pcollect.NewTCPTransportOpts(p2pcollect.NodeID(i), "127.0.0.1:0", nil, opts)
		if err != nil {
			return err
		}
		book[p2pcollect.NodeID(i)] = tr.Addr()
		tcps = append(tcps, tr)
		var ep p2pcollect.Transport = tr
		if loss > 0 {
			ep = p2pcollect.NewFaultyTransport(tr, p2pcollect.FaultConfig{LossProb: loss}, int64(i))
		}
		endpoints = append(endpoints, ep)
	}
	for _, tr := range tcps {
		for id, addr := range book {
			if id != tr.LocalID() {
				tr.AddRoute(id, addr)
			}
		}
	}

	// With -debug-addr, every endpoint shares one lifecycle tracer and one
	// debug HTTP server (endpoints distinguished by label).
	var tracer *p2pcollect.RingTracer
	if debugAddr != "" {
		tracer = p2pcollect.NewRingTracer(1 << 12)
	}

	// Peers: full mesh among themselves, modest per-second rates.
	var nodes []*p2pcollect.Node
	for i := 0; i < peers; i++ {
		cfg := p2pcollect.NodeConfig{
			SegmentSize: 4,
			BlockSize:   logdata.RecordSize,
			Lambda:      20,
			Mu:          40,
			Gamma:       0.5,
			BufferCap:   256,
			Seed:        int64(i + 1),
		}
		if tracer != nil {
			cfg.Tracer = tracer
		}
		for j := 1; j <= peers; j++ {
			if p2pcollect.NodeID(j) != tcps[i].LocalID() {
				cfg.Neighbors = append(cfg.Neighbors, p2pcollect.NodeID(j))
			}
		}
		node, err := p2pcollect.NewNode(endpoints[i], cfg)
		if err != nil {
			return err
		}
		nodes = append(nodes, node)
	}

	peerIDs := make([]p2pcollect.NodeID, peers)
	for i := range peerIDs {
		peerIDs[i] = p2pcollect.NodeID(i + 1)
	}
	policy, err := p2pcollect.NewPullPolicy(policyName, 99)
	if err != nil {
		return err
	}
	srvCfg := p2pcollect.ServerConfig{
		PullRate: 80,
		Peers:    peerIDs,
		Seed:     99,
		Policy:   policy,
	}
	if tracer != nil {
		srvCfg.Tracer = tracer
	}
	server, err := p2pcollect.NewServer(endpoints[peers], srvCfg)
	if err != nil {
		return err
	}

	var mu sync.Mutex
	recovered := make(map[uint64]int) // records recovered per origin peer
	var sample *logdata.Record
	server.OnSegment = func(id p2pcollect.SegmentID, blocks [][]byte) {
		mu.Lock()
		defer mu.Unlock()
		for _, block := range blocks {
			records, err := logdata.UnpackRecords(block)
			if err != nil {
				continue
			}
			recovered[id.Origin] += len(records)
			if sample == nil && len(records) > 0 {
				sample = records[0]
			}
		}
	}

	if loss > 0 {
		fmt.Printf("injecting %.0f%% message loss on every endpoint\n", loss*100)
	}
	fmt.Printf("starting %d peers + 1 logging server (id %d) on localhost TCP...\n", peers, serverID)
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			return err
		}
	}
	if err := server.Start(); err != nil {
		return err
	}
	if debugAddr != "" {
		regs := make([]*p2pcollect.ObsRegistry, 0, peers+1)
		for _, n := range nodes {
			regs = append(regs, n.Registry())
		}
		regs = append(regs, server.Registry())
		dbg, err := p2pcollect.ServeDebug(debugAddr, regs...)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint: %s/metrics | %s/debug/snapshot | %s/debug/pprof/\n",
			dbg.URL(), dbg.URL(), dbg.URL())
	}
	time.Sleep(duration)

	stats := server.Stats()
	server.Stop()
	for _, n := range nodes {
		n.Stop()
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nserver after %v (policy %s): %d pulls sent, %d blocks received, %d segments decoded\n",
		duration, policyName, stats.PullsSent, stats.BlocksReceived, stats.DecodedSegments)
	if stats.BlocksReceived > 0 {
		useful := stats.Protocol["innovativePulls"]
		fmt.Printf("  pull split: %d useful / %d redundant (%.1f%% of replies wasted)\n",
			useful, stats.RedundantBlocks,
			100*float64(stats.RedundantBlocks)/float64(stats.BlocksReceived))
	}
	if loss > 0 {
		fmt.Printf("  fault injection dropped %d outgoing server messages\n",
			stats.Protocol["transportFaultLossDrops"])
	}
	if tracer != nil {
		for _, h := range server.Registry().Snapshot().Histograms {
			if h.Name == "pullRTT" && h.Count > 0 {
				fmt.Printf("  pull RTT: p50=%.1fms p99=%.1fms over %d closed pulls\n",
					h.P50*1000, h.P99*1000, h.Count)
			}
		}
		// Reconstruct where one decoded segment's time went.
		for _, ev := range tracer.Tail(1 << 12) {
			if ev.Kind != p2pcollect.TraceDecoded {
				continue
			}
			fmt.Printf("  lifecycle of segment %v:\n", ev.Seg)
			for _, ph := range tracer.Query(ev.Seg).Phases() {
				fmt.Printf("    %-18s %6.3fs\n", ph.Name, ph.Dur)
			}
			break
		}
	}
	origins := make([]uint64, 0, len(recovered))
	for origin := range recovered {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, origin := range origins {
		fmt.Printf("  peer %d: %d vital-statistics records recovered\n", origin, recovered[origin])
	}
	if sample != nil {
		fmt.Printf("\nsample record: peer=%d seq=%d continuity=%.3f buffer=%.1fs down=%.0fkbps up=%.0fkbps loss=%.3f\n",
			sample.PeerID, sample.SeqNo, sample.Continuity, sample.BufferLevel,
			sample.DownloadKbps, sample.UploadKbps, sample.LossRate)
	}
	if stats.DecodedSegments == 0 {
		return fmt.Errorf("no segments decoded; try a longer -duration")
	}
	return nil
}
