// Livetcp boots a real deployment on localhost: peers running the full
// protocol over TCP — generating statistics records, gossiping coded
// blocks, expiring TTLs — and one logging server that pulls, decodes
// segments, and prints the recovered vital-statistics records.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"p2pcollect"
	"p2pcollect/internal/logdata"
	"p2pcollect/internal/transport"
)

func main() {
	peers := flag.Int("peers", 6, "number of live peers")
	duration := flag.Duration("duration", 4*time.Second, "how long to run")
	flag.Parse()
	if err := run(*peers, *duration); err != nil {
		log.Fatal(err)
	}
}

func run(peers int, duration time.Duration) error {
	if peers < 2 {
		return fmt.Errorf("need at least 2 peers, got %d", peers)
	}
	serverID := p2pcollect.NodeID(peers + 1)

	// Start every transport on an ephemeral localhost port, then exchange
	// the address book.
	book := make(map[p2pcollect.NodeID]string, peers+1)
	transports := make([]*transport.TCPTransport, 0, peers+1)
	for i := 1; i <= peers+1; i++ {
		tr, err := p2pcollect.NewTCPTransport(p2pcollect.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			return err
		}
		book[p2pcollect.NodeID(i)] = tr.Addr()
		transports = append(transports, tr)
	}
	for _, tr := range transports {
		for id, addr := range book {
			if id != tr.LocalID() {
				tr.AddRoute(id, addr)
			}
		}
	}

	// Peers: full mesh among themselves, modest per-second rates.
	var nodes []*p2pcollect.Node
	for i := 0; i < peers; i++ {
		cfg := p2pcollect.NodeConfig{
			SegmentSize: 4,
			BlockSize:   logdata.RecordSize,
			Lambda:      20,
			Mu:          40,
			Gamma:       0.5,
			BufferCap:   256,
			Seed:        int64(i + 1),
		}
		for j := 1; j <= peers; j++ {
			if p2pcollect.NodeID(j) != transports[i].LocalID() {
				cfg.Neighbors = append(cfg.Neighbors, p2pcollect.NodeID(j))
			}
		}
		node, err := p2pcollect.NewNode(transports[i], cfg)
		if err != nil {
			return err
		}
		nodes = append(nodes, node)
	}

	peerIDs := make([]p2pcollect.NodeID, peers)
	for i := range peerIDs {
		peerIDs[i] = p2pcollect.NodeID(i + 1)
	}
	server, err := p2pcollect.NewServer(transports[peers], p2pcollect.ServerConfig{
		PullRate: 80,
		Peers:    peerIDs,
		Seed:     99,
	})
	if err != nil {
		return err
	}

	var mu sync.Mutex
	recovered := make(map[uint64]int) // records recovered per origin peer
	var sample *logdata.Record
	server.OnSegment = func(id p2pcollect.SegmentID, blocks [][]byte) {
		mu.Lock()
		defer mu.Unlock()
		for _, block := range blocks {
			records, err := logdata.UnpackRecords(block)
			if err != nil {
				continue
			}
			recovered[id.Origin] += len(records)
			if sample == nil && len(records) > 0 {
				sample = records[0]
			}
		}
	}

	fmt.Printf("starting %d peers + 1 logging server (id %d) on localhost TCP...\n", peers, serverID)
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			return err
		}
	}
	if err := server.Start(); err != nil {
		return err
	}
	time.Sleep(duration)

	stats := server.Stats()
	server.Stop()
	for _, n := range nodes {
		n.Stop()
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nserver after %v: %d pulls sent, %d blocks received, %d segments decoded\n",
		duration, stats.PullsSent, stats.BlocksReceived, stats.DecodedSegments)
	origins := make([]uint64, 0, len(recovered))
	for origin := range recovered {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, origin := range origins {
		fmt.Printf("  peer %d: %d vital-statistics records recovered\n", origin, recovered[origin])
	}
	if sample != nil {
		fmt.Printf("\nsample record: peer=%d seq=%d continuity=%.3f buffer=%.1fs down=%.0fkbps up=%.0fkbps loss=%.3f\n",
			sample.PeerID, sample.SeqNo, sample.Continuity, sample.BufferLevel,
			sample.DownloadKbps, sample.UploadKbps, sample.LossRate)
	}
	if stats.DecodedSegments == 0 {
		return fmt.Errorf("no segments decoded; try a longer -duration")
	}
	return nil
}
