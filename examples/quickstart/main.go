// Quickstart: simulate the indirect collection protocol at one parameter
// setting, compare the measured session throughput, storage overhead, and
// delay against the paper's analytical predictions (Theorems 1-3), and show
// the direct-pull baseline losing data the indirect mechanism keeps.
package main

import (
	"fmt"
	"log"

	"p2pcollect"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n      = 300
		lambda = 10.0 // blocks generated per peer per unit time
		mu     = 8.0  // gossip bandwidth per peer
		gamma  = 1.0  // TTL rate: mean block lifetime 1/γ
		c      = 4.0  // normalized server capacity (0.4× demand)
		s      = 16   // segment size: 16 blocks coded together
	)

	fmt.Println("== Indirect P2P data collection: quickstart ==")
	fmt.Printf("N=%d peers, lambda=%g, mu=%g, gamma=%g, c=%g (capacity %.0f%% of demand), s=%d\n\n",
		n, lambda, mu, gamma, c, 100*c/lambda, s)

	// Analytical predictions from the ODE characterization.
	m, err := p2pcollect.Analyze(p2pcollect.ModelParams{
		Lambda: lambda, Mu: mu, Gamma: gamma, C: c, S: s,
	})
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}

	// Discrete-event simulation of the full protocol.
	r, err := p2pcollect.Simulate(p2pcollect.SimConfig{
		N: n, Lambda: lambda, Mu: mu, Gamma: gamma, SegmentSize: s,
		BufferCap: 160, C: c, Warmup: 15, Horizon: 45, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}

	fmt.Println("metric                         analysis    simulation")
	fmt.Printf("normalized throughput          %8.3f    %10.3f\n", m.NormalizedThroughput, r.NormalizedThroughput)
	fmt.Printf("storage overhead (blocks/peer) %8.3f    %10.3f   (bound mu/gamma = %g)\n",
		m.Overhead, r.StorageOverhead, mu/gamma)
	fmt.Printf("block delivery delay           %8.3f    %10.3f\n", m.BlockDelay, r.MeanBlockDelay)
	fmt.Printf("data saved per peer (blocks)   %8.3f    %10.3f\n\n", m.SavedPerPeer, r.SavedPerPeer)

	fmt.Printf("simulated activity: %d segments injected, %d delivered, %d server pulls (%.0f%% useful)\n",
		r.InjectedSegments, r.DeliveredSegments, r.ServerPulls, 100*r.CollectionEfficiency())
	fmt.Printf("rank-based ground truth: %d segments fully decodable at the servers\n\n", r.RankDecodedSegments)

	// The same capacity with the traditional architecture.
	b, err := p2pcollect.SimulateBaseline(p2pcollect.BaselineConfig{
		N: n, Lambda: lambda, C: c, BufferCap: 40,
		Warmup: 15, Horizon: 45, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fmt.Printf("direct-pull baseline at the same capacity: delivered %.3f of demand, lost %.1f%% of blocks to overflow\n",
		b.NormalizedThroughput, 100*b.LossFraction())
	fmt.Println("(with c < lambda the server is the bottleneck either way; the indirect scheme")
	fmt.Println(" turns the overflow into a decentralized buffer that servers drain over time)")
	return nil
}
