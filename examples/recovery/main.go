// Recovery: kill a durable logging server mid-collection and restart it
// from its write-ahead log. The run prints what the crash left on disk,
// what recovery reconstructed — snapshot, replayed log records, resumed
// collections and their total rank — and verifies that collection simply
// continues: segments the first server half-collected are finished by the
// second, and nothing is ever delivered twice.
//
// The same mechanism over TCP: collectnode -mode server -wal-dir <dir>,
// kill -9 the process, start it again with the same flags.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"p2pcollect"
)

const (
	peers    = 12
	degree   = 3
	pullRate = 80.0
	phase    = 3 * time.Second
)

func main() {
	root, err := os.MkdirTemp("", "p2pcollect-recovery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	var mu sync.Mutex
	delivered := make(map[p2pcollect.SegmentID]int)
	onSegment := func(id p2pcollect.SegmentID, blocks [][]byte) {
		mu.Lock()
		delivered[id]++
		mu.Unlock()
	}

	// Phase 1: a cluster whose single server logs every received block
	// under <root>/shard-0. SyncAlways makes the kill below lose nothing,
	// so the resumed ranks are exactly the pre-kill ones; the default
	// interval mode would lose at most the last 50 ms of blocks.
	durability := p2pcollect.Durability{
		Dir:           root,
		Sync:          p2pcollect.WALSyncAlways,
		SnapshotEvery: 64,
	}
	cluster, err := p2pcollect.StartCluster(p2pcollect.ClusterConfig{
		Peers:   peers,
		Servers: 1,
		Degree:  degree,
		Node: p2pcollect.NodeConfig{
			SegmentSize: 8,
			BlockSize:   64,
			Lambda:      10,
			Mu:          60,
			Gamma:       0.05,
			BufferCap:   4096,
		},
		PullRate:   pullRate,
		OnSegment:  onSegment,
		Durability: durability,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	time.Sleep(phase)
	srv := cluster.Servers[0]
	id := srv.ID()
	pre := srv.Stats()
	srv.CrashStop() // hard stop: no final snapshot, buffered writes dropped
	mu.Lock()
	preDelivered := len(delivered)
	mu.Unlock()
	fmt.Printf("killed server %d after %v: %d segments delivered, %d mid-collection\n",
		id, phase, preDelivered, pre.OpenDecoders)

	walDir := filepath.Join(root, "shard-0")
	entries, err := os.ReadDir(walDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("left on disk in %s:\n", walDir)
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			fmt.Printf("  %-24s %7d bytes\n", e.Name(), info.Size())
		}
	}

	// Phase 2: a new server over the same WAL directory and network
	// identity. NewServer runs recovery before the first pull.
	peerIDs := make([]p2pcollect.NodeID, peers)
	for i := range peerIDs {
		peerIDs[i] = p2pcollect.NodeID(i + 1)
	}
	srv2, err := p2pcollect.NewServer(cluster.Network.Join(id), p2pcollect.ServerConfig{
		PullRate:    pullRate,
		Peers:       peerIDs,
		SegmentSize: 8,
		Seed:        99,
		Durability: p2pcollect.Durability{
			Dir:           walDir,
			Sync:          durability.Sync,
			SnapshotEvery: durability.SnapshotEvery,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, ok := p2pcollect.ServerRecovery(srv2)
	if !ok {
		log.Fatal("restarted server is not durable")
	}
	fmt.Printf("recovery in %v: snapshot=%v (%d collections), %d log records replayed, "+
		"%d open segments resumed at total rank %d\n",
		stats.Duration.Round(time.Microsecond), stats.SnapshotLoaded, stats.SnapshotSegments,
		stats.ReplayedRecords, stats.OpenSegments, stats.TotalRank)
	srv2.OnSegment = onSegment
	if err := srv2.Start(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(phase)
	srv2.Stop()

	mu.Lock()
	defer mu.Unlock()
	dupes := 0
	for _, n := range delivered {
		if n > 1 {
			dupes++
		}
	}
	fmt.Printf("after restart: %d segments delivered in total (+%d post-crash), %d duplicates\n",
		len(delivered), len(delivered)-preDelivered, dupes)
	if dupes > 0 {
		log.Fatal("a restart must never re-deliver a segment")
	}
	fmt.Println("the crash cost nothing but the downtime: collection resumed where it stopped")
}
