package p2pcollect_test

import (
	"math"
	"testing"
	"time"

	"p2pcollect"
	"p2pcollect/internal/logdata"
)

func TestFacadeSimulate(t *testing.T) {
	r, err := p2pcollect.Simulate(p2pcollect.SimConfig{
		N: 60, Lambda: 6, Mu: 4, Gamma: 1, SegmentSize: 4,
		BufferCap: 64, C: 2, Warmup: 6, Horizon: 18, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveredSegments == 0 {
		t.Error("facade simulation delivered nothing")
	}
}

func TestFacadeAnalyzeMatchesSim(t *testing.T) {
	// The headline integration check: analysis and simulation agree on the
	// normalized session throughput within sampling error.
	p := p2pcollect.ModelParams{Lambda: 10, Mu: 8, Gamma: 1, C: 4, S: 8}
	m, err := p2pcollect.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p2pcollect.SimConfig{
		N: 200, Lambda: p.Lambda, Mu: p.Mu, Gamma: p.Gamma,
		SegmentSize: p.S, BufferCap: 128, C: p.C,
		Warmup: 12, Horizon: 36, Seed: 2,
	}
	// Under the ODE's own sampling assumption the agreement is tight.
	mfCfg := cfg
	mfCfg.MeanFieldSampling = true
	mf, err := p2pcollect.Simulate(mfCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mf.NormalizedThroughput-m.NormalizedThroughput) / m.NormalizedThroughput; rel > 0.1 {
		t.Errorf("mean-field sim %v vs analysis %v (rel %v)", mf.NormalizedThroughput, m.NormalizedThroughput, rel)
	}
	// The literal protocol deviates below the mean-field prediction (the
	// documented sampling gap) but stays in the same regime.
	r, err := p2pcollect.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NormalizedThroughput > m.NormalizedThroughput*1.05 ||
		r.NormalizedThroughput < m.NormalizedThroughput*0.6 {
		t.Errorf("protocol sim %v vs analysis %v out of expected band", r.NormalizedThroughput, m.NormalizedThroughput)
	}
}

func TestFacadeBaseline(t *testing.T) {
	r, err := p2pcollect.SimulateBaseline(p2pcollect.BaselineConfig{
		N: 40, Lambda: 4, C: 2, BufferCap: 20, Warmup: 5, Horizon: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Collected == 0 {
		t.Error("baseline collected nothing")
	}
}

func TestFacadeNonCodingThroughput(t *testing.T) {
	got, err := p2pcollect.NonCodingThroughput(20, 10, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got >= 0.2 {
		t.Errorf("throughput %v outside (0, capacity)", got)
	}
}

func TestFacadeLiveCluster(t *testing.T) {
	decoded := make(chan p2pcollect.SegmentID, 64)
	cluster, err := p2pcollect.StartCluster(p2pcollect.ClusterConfig{
		Peers:   8,
		Servers: 1,
		Degree:  3,
		Node: p2pcollect.NodeConfig{
			SegmentSize: 2,
			BlockSize:   logdata.RecordSize,
			Lambda:      40,
			Mu:          60,
			Gamma:       2,
			BufferCap:   128,
		},
		PullRate: 100,
		Seed:     4,
		OnSegment: func(id p2pcollect.SegmentID, blocks [][]byte) {
			select {
			case decoded <- id:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	select {
	case <-decoded:
	case <-time.After(15 * time.Second):
		t.Fatal("live cluster decoded nothing in 15s")
	}
}
